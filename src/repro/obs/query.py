"""Per-query execution statistics: collectors, QueryStats, slow log.

A :class:`QueryCollector` rides along one query execution (pushed onto
the thread-local stack in :mod:`repro.obs.metrics`).  The physical
operators (:mod:`repro.sparql.physical`) open one
:class:`OperatorStats` record per executed operator (pattern step,
path step, filter); the store reports index scans into whichever
record is open.  ``finish()`` freezes everything into a
:class:`QueryStats`, which EXPLAIN ANALYZE renders and
``SelectResult.stats`` carries back to callers.

The counters also carry the engine's plan-cache activity for the
query (``plan_cache.hits`` / ``plan_cache.misses`` /
``plan_cache.evictions``) — see :meth:`QueryStats.plan_cache`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional


@dataclass
class OperatorStats:
    """Actual execution statistics of one plan operator.

    ``rows_scanned`` counts index entries *examined* (including ones a
    residual filter rejected); ``rows_matched`` counts entries that
    matched the scan pattern.  ``rows_out`` is the operator's output
    cardinality, which for a join may exceed either (row multiplication)
    — the invariant the property tests rely on is
    ``rows_matched <= rows_scanned``.
    """

    operator: str                  # "pattern" | "path" | "filter"
    detail: str                    # rendered pattern / expression text
    bound: str = ""                # Table 5-style bound-position list
    join_method: str = ""          # "NLJ" | "hash join" | "" (non-joins)
    join_reason: str = ""          # thresholds behind the choice
    estimate: int = 0              # planner estimate (index prefix count)
    rows_in: int = 0               # input relation cardinality
    rows_out: int = 0              # output relation cardinality
    probes: int = 0                # index scans issued (NLJ: per row)
    range_scans: int = 0
    full_scans: int = 0
    rows_scanned: int = 0
    rows_matched: int = 0
    index_specs: List[str] = field(default_factory=list)
    frontier_sizes: List[int] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def scan_kind(self) -> str:
        if self.range_scans and not self.full_scans:
            return "index range scan"
        if self.full_scans and not self.range_scans:
            return "full index scan"
        if self.range_scans and self.full_scans:
            return "mixed scan"
        return "no scan"

    def render(self, step: int) -> str:
        """One EXPLAIN ANALYZE line: estimates next to actuals."""
        index = "+".join(f"{spec}M" for spec in self.index_specs) or "-"
        parts = [f"{step}: {self.detail}"]
        if self.bound:
            parts.append(f"[{self.bound}]")
        parts.append(index)
        method = f", {self.join_method}" if self.join_method else ""
        parts.append(f"({self.scan_kind}{method})")
        parts.append(f"est={self.estimate}")
        parts.append(f"in={self.rows_in}")
        parts.append(f"out={self.rows_out}")
        parts.append(
            f"scans={self.probes} scanned={self.rows_scanned} "
            f"matched={self.rows_matched}"
        )
        if self.frontier_sizes:
            parts.append(f"frontier={self.frontier_sizes}")
        parts.append(f"time={self.seconds * 1000:.3f}ms")
        line = "  ".join(parts)
        if self.join_reason:
            line += f"\n   `- {self.join_reason}"
        return line

    def to_dict(self) -> Dict:
        return {
            "operator": self.operator,
            "detail": self.detail,
            "bound": self.bound,
            "join_method": self.join_method,
            "join_reason": self.join_reason,
            "estimate": self.estimate,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "probes": self.probes,
            "range_scans": self.range_scans,
            "full_scans": self.full_scans,
            "rows_scanned": self.rows_scanned,
            "rows_matched": self.rows_matched,
            "index_specs": list(self.index_specs),
            "frontier_sizes": list(self.frontier_sizes),
            "seconds": self.seconds,
        }


@dataclass
class QueryStats:
    """Everything observed while executing one query."""

    wall_seconds: float
    rows: int
    operators: List[OperatorStats]
    counters: Dict[str, int]
    #: The span tree of this execution when tracing was on (a
    #: :class:`repro.obs.trace.Trace`), else None.
    trace: Optional[object] = None

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def plan_cache(self) -> Dict[str, int]:
        """This query's plan-cache activity (hit/miss/eviction counts)."""
        return {
            "hits": self.counter("plan_cache.hits"),
            "misses": self.counter("plan_cache.misses"),
            "evictions": self.counter("plan_cache.evictions"),
        }

    def join_methods(self) -> List[str]:
        return [op.join_method for op in self.operators if op.join_method]

    def summary(self) -> str:
        scans = sum(op.probes for op in self.operators)
        scanned = sum(op.rows_scanned for op in self.operators)
        joins = self.join_methods()
        return (
            f"{self.rows} rows in {self.wall_seconds * 1000:.3f}ms; "
            f"{len(self.operators)} operators, {scans} index scans, "
            f"{scanned} entries scanned; joins: "
            f"{joins.count('NLJ')} NLJ / {joins.count('hash join')} hash; "
            f"filter pushdown hits: {self.counter('filter.pushdown')}"
        )

    def to_dict(self) -> Dict:
        document = {
            "wall_seconds": self.wall_seconds,
            "rows": self.rows,
            "operators": [op.to_dict() for op in self.operators],
            "counters": dict(self.counters),
        }
        if self.trace is not None:
            document["trace"] = self.trace.to_dict()
        return document


class QueryCollector:
    """Accumulates operator records and counters for one execution.

    Operator records form a stack because operators can nest (an EXISTS
    filter evaluates a whole group while the filter record is open);
    scans always attribute to the innermost open record.  A collector is
    used by a single thread (the one running the query), so it needs no
    locking of its own.
    """

    def __init__(self):
        self.operators: List[OperatorStats] = []
        self.counters: Dict[str, int] = {}
        self._open: List[OperatorStats] = []
        self._starts: List[float] = []

    # -- counters ------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    # -- operator lifecycle --------------------------------------------

    def begin_operator(self, operator: str, detail: str, **fields) -> OperatorStats:
        record = OperatorStats(operator=operator, detail=detail, **fields)
        self.operators.append(record)
        self._open.append(record)
        self._starts.append(time.perf_counter())
        return record

    def end_operator(self, rows_out: int) -> None:
        record = self._open.pop()
        record.seconds = time.perf_counter() - self._starts.pop()
        record.rows_out = rows_out

    # -- reports from the store / path engine --------------------------

    def record_scan(
        self, spec: str, prefix_length: int, scanned: int, matched: int
    ) -> None:
        self.inc("index.range_scans" if prefix_length else "index.full_scans")
        self.inc("index.rows_scanned", scanned)
        self.inc("index.rows_matched", matched)
        if not self._open:
            return
        record = self._open[-1]
        record.probes += 1
        if prefix_length:
            record.range_scans += 1
        else:
            record.full_scans += 1
        record.rows_scanned += scanned
        record.rows_matched += matched
        if spec not in record.index_specs:
            record.index_specs.append(spec)

    def record_frontier(self, size: int) -> None:
        self.inc("path.hops")
        if self._open:
            self._open[-1].frontier_sizes.append(size)

    # -- completion ----------------------------------------------------

    def finish(self, wall_seconds: float, rows: int) -> QueryStats:
        return QueryStats(
            wall_seconds=wall_seconds,
            rows=rows,
            operators=list(self.operators),
            counters=dict(self.counters),
        )


@dataclass
class SlowQueryRecord:
    query: str
    seconds: float
    rows: int
    when: float  # time.time() timestamp

    def to_dict(self) -> Dict:
        return {
            "query": self.query,
            "seconds": self.seconds,
            "rows": self.rows,
            "when": self.when,
        }


class SlowQueryLog:
    """A bounded, thread-safe log of queries slower than a threshold.

    ``threshold_seconds=None`` disables the log (the engine then skips
    recording entirely).
    """

    def __init__(
        self,
        threshold_seconds: Optional[float] = None,
        capacity: int = 100,
    ):
        self.threshold_seconds = threshold_seconds
        self._entries: Deque[SlowQueryRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.threshold_seconds is not None

    def record(self, query: str, seconds: float, rows: int) -> bool:
        """Record if over threshold; returns whether it was logged."""
        if self.threshold_seconds is None or seconds < self.threshold_seconds:
            return False
        with self._lock:
            self._entries.append(
                SlowQueryRecord(query, seconds, rows, time.time())
            )
        return True

    @property
    def entries(self) -> List[SlowQueryRecord]:
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class ExplainAnalysis:
    """The result of ``explain(..., analyze=True)``.

    Iterates as rendered text lines (like static EXPLAIN) while keeping
    the structured per-operator records and the executed result around
    for programmatic assertions.
    """

    def __init__(self, stats: QueryStats, result=None):
        self.stats = stats
        self.result = result

    @property
    def steps(self) -> List[OperatorStats]:
        return self.stats.operators

    @property
    def trace(self):
        """The span tree of the analyzed execution, if traced."""
        return self.stats.trace

    @property
    def lines(self) -> List[str]:
        rendered = [
            op.render(number)
            for number, op in enumerate(self.stats.operators, start=1)
        ]
        rendered.append(f"-- {self.stats.summary()}")
        if self.stats.trace is not None:
            rendered.append(f"-- trace {self.stats.trace.trace_id} --")
            rendered.extend(self.stats.trace.render().splitlines())
        return rendered

    def __iter__(self):
        return iter(self.lines)

    def render(self) -> str:
        return "\n".join(self.lines)

    __str__ = render

    def __repr__(self) -> str:
        return (
            f"ExplainAnalysis(operators={len(self.stats.operators)}, "
            f"rows={self.stats.rows})"
        )
