"""Runtime observability: metrics, per-query statistics, and tracing.

The paper argues from *observed* access plans and runtime behaviour
(Table 5's plans, the NLJ-to-hash-join switches of Section 4.4); this
package is the instrumentation that lets the reproduction observe the
same things: a process-wide :class:`MetricsRegistry` of counters,
gauges and timers (now bounded-memory histograms with p50/p95/p99),
per-query :class:`QueryStats` built by a :class:`QueryCollector`, the
:class:`SlowQueryLog`, the :class:`ExplainAnalysis` object behind
``EXPLAIN ANALYZE``, hierarchical request tracing
(:mod:`repro.obs.trace`), Prometheus text exposition
(:mod:`repro.obs.prometheus`) and structured JSON logging
(:mod:`repro.obs.log`).

Everything is off by default and a true no-op when off — see
:mod:`repro.obs.metrics`, :mod:`repro.obs.trace` and
docs/OBSERVABILITY.md.
"""

from repro.obs import trace
from repro.obs.log import JsonFormatter, access_logger, configure_json_logging
from repro.obs.metrics import (
    BUCKET_BOUNDS,
    MetricsRegistry,
    TimerStats,
    collect,
    current_collector,
    disable,
    enable,
    enabled,
    is_active,
    is_enabled,
    registry,
    reset,
    snapshot,
)
from repro.obs.prometheus import render_prometheus
from repro.obs.query import (
    ExplainAnalysis,
    OperatorStats,
    QueryCollector,
    QueryStats,
    SlowQueryLog,
    SlowQueryRecord,
)
from repro.obs.trace import Span, Trace, TraceBuffer

__all__ = [
    "BUCKET_BOUNDS",
    "MetricsRegistry",
    "TimerStats",
    "QueryCollector",
    "QueryStats",
    "OperatorStats",
    "SlowQueryLog",
    "SlowQueryRecord",
    "ExplainAnalysis",
    "Span",
    "Trace",
    "TraceBuffer",
    "trace",
    "JsonFormatter",
    "access_logger",
    "configure_json_logging",
    "render_prometheus",
    "enable",
    "disable",
    "enabled",
    "is_enabled",
    "is_active",
    "registry",
    "reset",
    "snapshot",
    "collect",
    "current_collector",
]
