"""Runtime observability: metrics registry and per-query statistics.

The paper argues from *observed* access plans and runtime behaviour
(Table 5's plans, the NLJ-to-hash-join switches of Section 4.4); this
package is the instrumentation that lets the reproduction observe the
same things: a process-wide :class:`MetricsRegistry` of counters,
gauges and timers, per-query :class:`QueryStats` built by a
:class:`QueryCollector`, the :class:`SlowQueryLog`, and the
:class:`ExplainAnalysis` object behind ``EXPLAIN ANALYZE``.

Everything is off by default and a true no-op when off — see
:mod:`repro.obs.metrics` and docs/OBSERVABILITY.md.
"""

from repro.obs.metrics import (
    MetricsRegistry,
    TimerStats,
    collect,
    current_collector,
    disable,
    enable,
    enabled,
    is_active,
    is_enabled,
    registry,
    reset,
    snapshot,
)
from repro.obs.query import (
    ExplainAnalysis,
    OperatorStats,
    QueryCollector,
    QueryStats,
    SlowQueryLog,
    SlowQueryRecord,
)

__all__ = [
    "MetricsRegistry",
    "TimerStats",
    "QueryCollector",
    "QueryStats",
    "OperatorStats",
    "SlowQueryLog",
    "SlowQueryRecord",
    "ExplainAnalysis",
    "enable",
    "disable",
    "enabled",
    "is_enabled",
    "is_active",
    "registry",
    "reset",
    "snapshot",
    "collect",
    "current_collector",
]
