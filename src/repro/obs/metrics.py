"""The metrics registry: counters, gauges and timers for the engine.

Two reporting sinks share one set of instrumentation points:

* a process-wide :class:`MetricsRegistry` (thread-safe, disabled by
  default) that accumulates counters across queries — what
  ``GET /metrics`` and the benchmark harness read; and
* an optional per-query collector (see :mod:`repro.obs.query`) pushed
  onto a thread-local stack for the duration of one execution — what
  EXPLAIN ANALYZE and ``QueryStats`` are built from.

Instrumented code calls the module-level helpers (``inc``,
``record_scan``, ...), which route to whichever sinks are active.  When
neither is, every helper returns after a single flag/attribute check,
and the hot inner loops in :mod:`repro.store.index` skip their counting
variants entirely — observability is a true no-op unless switched on.
"""

from __future__ import annotations

import math
import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

__all__ = [
    "BUCKET_BOUNDS",
    "MetricsRegistry",
    "TimerStats",
    "enable",
    "disable",
    "is_enabled",
    "enabled",
    "registry",
    "reset",
    "snapshot",
    "is_active",
    "push_collector",
    "pop_collector",
    "current_collector",
    "collect",
    "inc",
    "set_gauge",
    "gauge_max",
    "observe",
    "record_scan",
    "record_join",
    "record_frontier",
]


#: Histogram bucket upper bounds: log-spaced (factor 2) from 1 µs.  28
#: finite buckets reach ~134 s; anything slower lands in the implicit
#: overflow (``+Inf``) bucket.  Fixed bounds keep every timer at a
#: constant 29 ints of memory regardless of observation count.
BUCKET_BOUNDS: Tuple[float, ...] = tuple(1e-6 * (2 ** i) for i in range(28))


class TimerStats:
    """Bounded-memory latency histogram for one timer.

    Tracks count / total / min / max exactly, plus a fixed array of
    log-spaced bucket counts (:data:`BUCKET_BOUNDS` + one overflow
    bucket) from which :meth:`quantile` estimates p50/p95/p99.  The
    estimate is exact up to bucket granularity: it always lies within
    the bucket that contains the true quantile (the property the
    Hypothesis suite checks), i.e. off by at most one bucket boundary.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: Per-bucket observation counts; index len(BUCKET_BOUNDS) is
        #: the overflow (+Inf) bucket.
        self.buckets: List[int] = [0] * (len(BUCKET_BOUNDS) + 1)

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        self.min = seconds if self.min is None else min(self.min, seconds)
        self.max = seconds if self.max is None else max(self.max, seconds)
        self.buckets[bisect_left(BUCKET_BOUNDS, seconds)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (0 < q <= 1) from the buckets.

        Returns the upper bound of the bucket holding the rank-``q``
        observation, tightened by the exact ``max`` — so the estimate
        never leaves the true quantile's bucket and never exceeds the
        largest observation.
        """
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for index, bucket_count in enumerate(self.buckets):
            cumulative += bucket_count
            if cumulative >= rank:
                if index < len(BUCKET_BOUNDS):
                    return min(BUCKET_BOUNDS[index], self.max)
                return self.max
        return self.max  # unreachable: cumulative == count >= rank

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def bucket_pairs(self) -> List[Tuple[object, int]]:
        """Non-empty ``(upper_bound_or_"+Inf", count)`` pairs, ascending.

        This is the JSON-safe shape ``to_dict`` embeds and the
        Prometheus renderer accumulates into cumulative ``le`` series.
        """
        pairs: List[Tuple[object, int]] = []
        for index, bucket_count in enumerate(self.buckets):
            if not bucket_count:
                continue
            if index < len(BUCKET_BOUNDS):
                pairs.append((BUCKET_BOUNDS[index], bucket_count))
            else:
                pairs.append(("+Inf", bucket_count))
        return pairs

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total_seconds": self.total,
            "mean_seconds": self.mean,
            "min_seconds": self.min or 0.0,
            "max_seconds": self.max or 0.0,
            "p50_seconds": self.p50,
            "p95_seconds": self.p95,
            "p99_seconds": self.p99,
            "buckets": [list(pair) for pair in self.bucket_pairs()],
        }


class MetricsRegistry:
    """A thread-safe bag of named counters, gauges and timers.

    All mutation happens under one lock; reads used on the hot path
    (none currently) would tolerate the GIL, but correctness of
    ``+=`` under a ThreadPoolExecutor requires the lock.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._timers: Dict[str, TimerStats] = {}

    # -- counters ------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    @property
    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def record_scan_counts(self, prefix_length: int, scanned: int, matched: int) -> None:
        """Batch the per-scan counters under a single lock acquisition.

        ``record_scan`` fires once per index scan — with nested-loop
        joins that is once per probe row, so three separate ``inc``
        calls here would triple the lock traffic on the hottest path.
        """
        with self._lock:
            counters = self._counters
            kind = "index.range_scans" if prefix_length else "index.full_scans"
            counters[kind] = counters.get(kind, 0) + 1
            counters["index.rows_scanned"] = (
                counters.get("index.rows_scanned", 0) + scanned
            )
            counters["index.rows_matched"] = (
                counters.get("index.rows_matched", 0) + matched
            )

    # -- gauges --------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        """Keep the maximum ever observed (e.g. peak frontier size)."""
        with self._lock:
            current = self._gauges.get(name)
            if current is None or value > current:
                self._gauges[name] = value

    def gauge(self, name: str) -> Optional[float]:
        return self._gauges.get(name)

    # -- timers --------------------------------------------------------

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            stats = self._timers.get(name)
            if stats is None:
                stats = self._timers[name] = TimerStats()
            stats.observe(seconds)

    def timer_stats(self, name: str) -> Optional[TimerStats]:
        return self._timers.get(name)

    @contextmanager
    def timer(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # -- lifecycle -----------------------------------------------------

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()

    def snapshot(self) -> Dict[str, Dict]:
        """A point-in-time copy, JSON-ready (``GET /metrics`` body)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {
                    name: stats.to_dict()
                    for name, stats in self._timers.items()
                },
            }

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, timers={len(self._timers)})"
        )


# ----------------------------------------------------------------------
# Global registry state
# ----------------------------------------------------------------------

_REGISTRY = MetricsRegistry()
_ENABLED = False

_TLS = threading.local()


def enable() -> MetricsRegistry:
    """Switch global metrics collection on; returns the registry."""
    global _ENABLED
    _ENABLED = True
    return _REGISTRY


def disable() -> None:
    global _ENABLED
    _ENABLED = False


def is_enabled() -> bool:
    return _ENABLED


@contextmanager
def enabled(fresh: bool = False):
    """Temporarily enable global metrics (optionally reset first)."""
    global _ENABLED
    previous = _ENABLED
    if fresh:
        _REGISTRY.reset()
    _ENABLED = True
    try:
        yield _REGISTRY
    finally:
        _ENABLED = previous


def registry() -> MetricsRegistry:
    return _REGISTRY


def reset() -> None:
    _REGISTRY.reset()


def snapshot() -> Dict[str, Dict]:
    return _REGISTRY.snapshot()


# ----------------------------------------------------------------------
# Per-query collector stack (thread-local)
# ----------------------------------------------------------------------


def _stack() -> List:
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = _TLS.stack = []
    return stack


def push_collector(collector) -> None:
    _stack().append(collector)


def pop_collector():
    return _stack().pop()


def current_collector():
    stack = getattr(_TLS, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def collect(collector):
    """Route instrumentation on this thread into ``collector``."""
    push_collector(collector)
    try:
        yield collector
    finally:
        pop_collector()


def is_active() -> bool:
    """True when any sink (registry or collector) would see reports.

    The store's scan loops use this to pick the counting code path;
    everything else just calls the helpers below, which individually
    no-op when nothing is listening.
    """
    return _ENABLED or bool(getattr(_TLS, "stack", None))


# ----------------------------------------------------------------------
# Instrumentation helpers (route to active sinks)
# ----------------------------------------------------------------------


def inc(name: str, amount: int = 1) -> None:
    if _ENABLED:
        _REGISTRY.inc(name, amount)
    collector = current_collector()
    if collector is not None:
        collector.inc(name, amount)


def set_gauge(name: str, value: float) -> None:
    if _ENABLED:
        _REGISTRY.set_gauge(name, value)


def gauge_max(name: str, value: float) -> None:
    if _ENABLED:
        _REGISTRY.gauge_max(name, value)


def observe(name: str, seconds: float) -> None:
    if _ENABLED:
        _REGISTRY.observe(name, seconds)


def record_scan(spec: str, prefix_length: int, scanned: int, matched: int) -> None:
    """One index scan completed (called from SemanticIndex.range_scan)."""
    if _ENABLED:
        _REGISTRY.record_scan_counts(prefix_length, scanned, matched)
    collector = current_collector()
    if collector is not None:
        collector.record_scan(spec, prefix_length, scanned, matched)


def record_join(method: str) -> None:
    """A join strategy was chosen for one executed pattern step."""
    name = {
        "hash join": "join.hash",
        "NLJ": "join.nlj",
    }.get(method, "join.other")
    inc(name)


def record_frontier(size: int) -> None:
    """A path-evaluation frontier advanced one hop."""
    if _ENABLED:
        _REGISTRY.inc("path.hops")
        _REGISTRY.inc("path.frontier_nodes", size)
        _REGISTRY.gauge_max("path.frontier_max", size)
    collector = current_collector()
    if collector is not None:
        collector.record_frontier(size)
