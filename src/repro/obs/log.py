"""Structured JSON logging, stamped with the active trace context.

Two pieces:

* :class:`JsonFormatter` — a stdlib ``logging.Formatter`` that renders
  every record as one JSON object per line (timestamp, level, logger,
  message, any ``extra=`` fields) and stamps it with the current
  thread's trace/span ids when a trace is active, so log lines and
  span trees join on ``trace_id``;
* the HTTP **access log** — the server emits one record per request on
  the ``repro.server.access`` logger (method, path, status, duration,
  bytes, client, trace id) instead of `BaseHTTPRequestHandler`'s
  unstructured stderr spam.  The logger ships with a ``NullHandler``:
  silent by default (tests stay quiet), one `configure_json_logging`
  call away from NDJSON on stderr.
"""

from __future__ import annotations

import json
import logging
import time
from typing import Optional

from repro.obs import trace as _trace

__all__ = [
    "ACCESS_LOGGER_NAME",
    "JsonFormatter",
    "access_logger",
    "configure_json_logging",
]

ACCESS_LOGGER_NAME = "repro.server.access"

#: LogRecord attributes that are plumbing, not user payload — anything
#: else found on a record (i.e. passed via ``extra=``) is emitted.
_RESERVED = frozenset(
    (
        "args",
        "asctime",
        "created",
        "exc_info",
        "exc_text",
        "filename",
        "funcName",
        "levelname",
        "levelno",
        "lineno",
        "message",
        "module",
        "msecs",
        "msg",
        "name",
        "pathname",
        "process",
        "processName",
        "relativeCreated",
        "stack_info",
        "taskName",
        "thread",
        "threadName",
    )
)


class JsonFormatter(logging.Formatter):
    """Render log records as single-line JSON objects.

    Every record carries ``ts`` (ISO-8601 UTC), ``level``, ``logger``
    and ``message``; fields passed via ``extra=`` ride along verbatim;
    and when the emitting thread has an active trace, ``trace_id`` and
    ``span_id`` are stamped automatically so logs correlate with spans.
    """

    def format(self, record: logging.LogRecord) -> str:
        document = {
            "ts": self._timestamp(record.created),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        trace_id, span_id = _trace.current_ids()
        if trace_id is not None:
            document.setdefault("trace_id", trace_id)
            document.setdefault("span_id", span_id)
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_"):
                continue
            document[key] = value
        if record.exc_info:
            document["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(document, default=str)

    @staticmethod
    def _timestamp(created: float) -> str:
        base = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(created))
        return f"{base}.{int((created % 1) * 1000):03d}Z"


def access_logger() -> logging.Logger:
    """The HTTP access logger (``repro.server.access``)."""
    return logging.getLogger(ACCESS_LOGGER_NAME)


def configure_json_logging(
    logger: Optional[logging.Logger] = None,
    level: int = logging.INFO,
    stream=None,
) -> logging.Handler:
    """Attach a JSON-formatting stream handler; returns the handler.

    With no arguments this turns the access log into NDJSON on stderr
    (``python -m repro serve --access-log`` uses exactly this).
    """
    target = logger if logger is not None else access_logger()
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonFormatter())
    target.addHandler(handler)
    target.setLevel(level)
    return handler


# Silent unless a handler is configured: the server can always emit.
access_logger().addHandler(logging.NullHandler())
