"""Prometheus text exposition (version 0.0.4) for the metrics registry.

Renders a :meth:`repro.obs.metrics.MetricsRegistry.snapshot` as the
plain-text format Prometheus scrapes:

* counters  → ``repro_<name>_total``
* gauges    → ``repro_<name>``
* timers    → full histograms: cumulative ``_bucket{le="..."}`` series
  over the log-spaced bounds of :class:`~repro.obs.metrics.TimerStats`,
  plus ``_sum`` and ``_count``.

Metric names are sanitized (dots become underscores) and prefixed with
the ``repro_`` namespace.  ``GET /metrics`` content-negotiates between
the JSON document and this rendering — see :mod:`repro.server`.
"""

from __future__ import annotations

import re
from typing import Dict, List

__all__ = ["render_prometheus", "CONTENT_TYPE"]

#: The content type Prometheus sends in its Accept header and expects
#: back (the ``charset`` is appended by the HTTP layer).
CONTENT_TYPE = "text/plain; version=0.0.4"

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str, namespace: str) -> str:
    sanitized = _NAME_SANITIZER.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"{namespace}_{sanitized}"


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return format(float(value), ".10g")


def render_prometheus(snapshot: Dict, namespace: str = "repro") -> str:
    """Render a registry snapshot in Prometheus text exposition format.

    ``snapshot`` is the JSON-ready dict from
    :func:`repro.obs.metrics.snapshot` — counters, gauges, and timers
    whose ``to_dict`` carries the non-empty histogram buckets as
    ``[[upper_bound_or_"+Inf", count], ...]``.
    """
    lines: List[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = _metric_name(name, namespace) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = _metric_name(name, namespace)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, timer in sorted(snapshot.get("timers", {}).items()):
        metric = _metric_name(name, namespace)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        saw_inf = False
        for upper_bound, count in timer.get("buckets", ()):
            cumulative += count
            if upper_bound == "+Inf":
                saw_inf = True
                label = "+Inf"
            else:
                label = _format_value(upper_bound)
            lines.append(f'{metric}_bucket{{le="{label}"}} {cumulative}')
        if not saw_inf:
            # Prometheus requires the +Inf bucket even when empty.
            lines.append(f'{metric}_bucket{{le="+Inf"}} {timer["count"]}')
        lines.append(f"{metric}_sum {_format_value(timer['total_seconds'])}")
        lines.append(f"{metric}_count {timer['count']}")
    return "\n".join(lines) + "\n"
