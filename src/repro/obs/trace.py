"""Hierarchical span tracing: follow one request through every layer.

The metrics registry answers "what has this process been doing" and the
query collector answers "what did this query do"; neither can answer
"where did *this request's* 38 ms go".  This module adds the third
sink: a trace is a tree of **spans** — named, timed regions with
key/value attributes — rooted at the request (or query) and nested down
through parse, plan, each executed operator, lock acquisition, WAL
append and fsync.  Every span carries the trace id, its own span id and
its parent's, so the tree reconstructs exactly even though spans are
recorded flat in completion order.

Activation mirrors :mod:`repro.obs.metrics`:

* nothing is traced unless a trace is *active on the current thread* —
  instrumented code calls :func:`span`, which returns a shared no-op
  singleton (no allocation at all) when no trace is active;
* :func:`tracing` opens a trace for a block (the server wraps each HTTP
  request, the engine wraps a query when ``SparqlEngine(trace=True)``);
* :func:`enable` flips the process-wide default so engines and servers
  trace every request without per-call opt-in.

Trace ids are adopted from callers (the ``X-Trace-Id`` HTTP header)
when syntactically sane, so a trace can span client and server.
Completed traces can be parked in a bounded :class:`TraceBuffer`
(``GET /trace/<id>``).
"""

from __future__ import annotations

import re
import threading
import time
import uuid
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

__all__ = [
    "OPERATOR_SPAN_NAMES",
    "PIPELINE_SPAN_NAMES",
    "Span",
    "Trace",
    "TraceBuffer",
    "adopt_trace_id",
    "attached",
    "current_span",
    "current_trace",
    "current_ids",
    "disable",
    "enable",
    "enabled",
    "is_active",
    "is_enabled",
    "new_span_id",
    "new_trace_id",
    "span",
    "tracing",
]

#: Span names the physical operators emit, one per operator kind (see
#: :mod:`repro.sparql.physical`).  The canonical catalogue for docs and
#: tests; the ``op.`` prefix distinguishes plan operators from the
#: fixed pipeline stages.
OPERATOR_SPAN_NAMES = (
    "op.IndexScan",
    "op.IndexNestedLoopJoin",
    "op.HashJoin",
    "op.CartesianProduct",
    "op.PathClosure",
    "op.Filter",
)

#: Fixed pipeline-stage spans the engine opens around each query: the
#: ``snapshot.pin`` span marks the MVCC snapshot capture (attribute
#: ``version``), the ``plan`` span wraps the plan-cache
#: fetch-or-compile (attribute ``cached``), ``execute`` wraps the
#: physical run.
#: PGQL requests replace ``parse`` with ``pgql.parse`` (the MATCH
#: parser) and ``pgql.compile`` (the Table 3 lowering, attribute
#: ``encoding``); the rest of the pipeline is shared.
PIPELINE_SPAN_NAMES = (
    "query", "snapshot.pin", "parse", "pgql.parse", "pgql.compile",
    "plan", "execute",
)

#: Adopted (externally supplied) trace ids must look like ids, not like
#: log-injection payloads: hex/uuid-ish, bounded length.
_VALID_TRACE_ID = re.compile(r"^[0-9A-Za-z-]{1,64}$")


def new_trace_id() -> str:
    return uuid.uuid4().hex


def new_span_id() -> str:
    return uuid.uuid4().hex[:16]


def adopt_trace_id(candidate: Optional[str]) -> str:
    """A caller-supplied trace id if it is sane, else a fresh one."""
    if candidate and _VALID_TRACE_ID.match(candidate):
        return candidate
    return new_trace_id()


class Span:
    """One named, timed region of a trace.

    ``started_at`` is wall-clock (``time.time``) for display and
    cross-host correlation; ``duration`` comes from the monotonic
    ``perf_counter`` so it is immune to clock steps.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "started_at",
        "_start",
        "duration",
        "attributes",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        attributes: Optional[Dict] = None,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.started_at = time.time()
        self._start = time.perf_counter()
        #: Seconds; None while the span is still open.
        self.duration: Optional[float] = None
        self.attributes: Dict = dict(attributes) if attributes else {}

    def set(self, key: str, value) -> "Span":
        """Attach one attribute; chainable."""
        self.attributes[key] = value
        return self

    def finish(self) -> None:
        if self.duration is None:
            self.duration = time.perf_counter() - self._start

    def to_dict(self) -> Dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "started_at": self.started_at,
            "duration_seconds": self.duration,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        ms = "open" if self.duration is None else f"{self.duration * 1000:.3f}ms"
        return f"Span({self.name!r}, {ms}, id={self.span_id})"


class _NoopSpan:
    """The shared do-nothing span handed out when tracing is inactive.

    A singleton: calling :func:`span` on an untraced thread allocates
    nothing, which is what keeps disabled tracing a strict no-op.
    """

    __slots__ = ()

    def set(self, key: str, value) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Trace:
    """All spans of one trace id, recorded flat, rendered as a tree.

    Span *append* is lock-protected so helper threads may contribute,
    but the common case is single-threaded: the thread that opened the
    trace owns the span stack (which is thread-local anyway).
    """

    def __init__(self, trace_id: Optional[str] = None):
        self.trace_id = trace_id or new_trace_id()
        self.spans: List[Span] = []
        self._lock = threading.Lock()

    def add(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    def finish(self) -> None:
        """Close any spans left open (e.g. by an exception unwind)."""
        with self._lock:
            for span in self.spans:
                span.finish()

    @property
    def root(self) -> Optional[Span]:
        for span in self.spans:
            if span.parent_id is None:
                return span
        return self.spans[0] if self.spans else None

    @property
    def duration(self) -> float:
        root = self.root
        if root is None or root.duration is None:
            return 0.0
        return root.duration

    def find(self, name: str) -> List[Span]:
        """All spans with the given name, in start order."""
        return [span for span in self.spans if span.name == name]

    def _children(self) -> Dict[Optional[str], List[Span]]:
        children: Dict[Optional[str], List[Span]] = {}
        for span in self.spans:
            children.setdefault(span.parent_id, []).append(span)
        return children

    def render(self) -> str:
        """The span tree as indented text (``repro explain --trace``)."""
        children = self._children()
        lines: List[str] = []

        def walk(span: Span, depth: int) -> None:
            duration = (
                "open"
                if span.duration is None
                else f"{span.duration * 1000:.3f}ms"
            )
            attributes = " ".join(
                f"{key}={value}" for key, value in span.attributes.items()
            )
            line = f"{'  ' * depth}{span.name}  {duration}"
            if attributes:
                line += f"  [{attributes}]"
            lines.append(line)
            for child in children.get(span.span_id, ()):
                walk(child, depth + 1)

        for root in children.get(None, ()):
            walk(root, 0)
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "trace_id": self.trace_id,
            "duration_seconds": self.duration,
            "spans": [span.to_dict() for span in self.spans],
        }

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        return f"Trace({self.trace_id}, spans={len(self.spans)})"


class TraceBuffer:
    """A bounded, thread-safe ring of recently completed traces.

    The server parks every finished request trace here so
    ``GET /trace/<id>`` can serve it; oldest traces fall off the end.
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, Trace]" = OrderedDict()

    def add(self, trace: Trace) -> None:
        with self._lock:
            self._traces[trace.trace_id] = trace
            self._traces.move_to_end(trace.trace_id)
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)

    def get(self, trace_id: str) -> Optional[Trace]:
        with self._lock:
            return self._traces.get(trace_id)

    def trace_ids(self) -> List[str]:
        with self._lock:
            return list(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


# ----------------------------------------------------------------------
# Global flag and thread-local active trace
# ----------------------------------------------------------------------

_ENABLED = False
_TLS = threading.local()


def enable() -> None:
    """Trace every request/query process-wide (servers and engines)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    global _ENABLED
    _ENABLED = False


def is_enabled() -> bool:
    return _ENABLED


@contextmanager
def enabled():
    """Temporarily flip the process-wide tracing default on."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = True
    try:
        yield
    finally:
        _ENABLED = previous


def is_active() -> bool:
    """True when the *current thread* has an open trace."""
    return getattr(_TLS, "trace", None) is not None


def current_trace() -> Optional[Trace]:
    return getattr(_TLS, "trace", None)


def current_span() -> Optional[Span]:
    stack = getattr(_TLS, "stack", None)
    return stack[-1] if stack else None


def current_ids() -> Tuple[Optional[str], Optional[str]]:
    """(trace_id, span_id) of the innermost open span, or (None, None)."""
    span = current_span()
    if span is None:
        return None, None
    return span.trace_id, span.span_id


class _SpanContext:
    """Context manager opening one span under the active trace."""

    __slots__ = ("_trace", "_name", "_attributes", "_span")

    def __init__(self, trace: Trace, name: str, attributes: Dict):
        self._trace = trace
        self._name = name
        self._attributes = attributes
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        parent = current_span()
        span = Span(
            self._trace.trace_id,
            new_span_id(),
            parent.span_id if parent is not None else None,
            self._name,
            self._attributes,
        )
        self._trace.add(span)
        _TLS.stack.append(span)
        self._span = span
        return span

    def __exit__(self, *exc_info) -> bool:
        span = self._span
        span.finish()
        stack = _TLS.stack
        if stack and stack[-1] is span:
            stack.pop()
        return False


def span(name: str, **attributes):
    """Open a child span of the active trace — or do nothing.

    On a thread without an active trace this returns the shared no-op
    singleton: one attribute lookup, zero allocations, so instrumented
    hot paths stay cost-free when tracing is off.
    """
    trace = getattr(_TLS, "trace", None)
    if trace is None:
        return NOOP_SPAN
    return _SpanContext(trace, name, attributes)


@contextmanager
def attached(trace: Trace, parent: Optional[Span] = None):
    """Adopt a trace opened on *another* thread for the current block.

    The server's worker pool uses this: the connection thread opens the
    request trace, the worker thread executing the query attaches to it
    so the query's spans land in the same tree (``Trace.add`` is
    lock-protected, so cross-thread appends are safe).  ``parent``
    nests the block's spans under the caller's current span.
    """
    previous_trace = getattr(_TLS, "trace", None)
    previous_stack = getattr(_TLS, "stack", None)
    _TLS.trace = trace
    _TLS.stack = [parent] if parent is not None else []
    try:
        yield trace
    finally:
        _TLS.trace = previous_trace
        _TLS.stack = previous_stack if previous_stack is not None else []


@contextmanager
def tracing(name: str, trace_id: Optional[str] = None, **attributes):
    """Run a block as the root span of a new trace on this thread.

    Yields the :class:`Trace`; on exit all spans are finished and the
    thread's previous trace context (if any — nesting restores it) is
    put back.
    """
    previous_trace = getattr(_TLS, "trace", None)
    previous_stack = getattr(_TLS, "stack", None)
    trace = Trace(trace_id)
    _TLS.trace = trace
    _TLS.stack = []
    try:
        with span(name, **attributes):
            yield trace
    finally:
        trace.finish()
        _TLS.trace = previous_trace
        _TLS.stack = previous_stack if previous_stack is not None else []
