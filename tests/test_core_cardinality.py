"""Tests that Table 2's cardinality formulas hold exactly on generated
RDF data, for all three models."""

import pytest

from repro.core import (
    MODEL_NG,
    MODEL_RF,
    MODEL_SP,
    measure_property_graph,
    measure_rdf,
    predict_rdf,
    transformer_for,
)
from repro.core.cardinality import table7_row
from repro.core.vocabulary import PgVocabulary
from repro.propertygraph import PropertyGraph


def make_graph(vertices=8, edges=14, kv_every=2):
    """A deterministic multi-label graph where every vertex has a KV."""
    graph = PropertyGraph("synthetic")
    for i in range(1, vertices + 1):
        graph.add_vertex(i, {"name": f"v{i}", "age": 20 + i})
    labels = ["follows", "knows"]
    for j in range(edges):
        source = (j % vertices) + 1
        target = ((j * 3 + 1) % vertices) + 1
        properties = {"since": 2000 + j} if j % kv_every == 0 else None
        graph.add_edge(source, labels[j % 2], target, properties)
    return graph


@pytest.fixture(scope="module")
def graph():
    return make_graph()


class TestPropertyGraphMeasurement:
    def test_counts(self, graph):
        pg = measure_property_graph(graph)
        assert pg.vertices == 8
        assert pg.edges == 14
        assert pg.edges_with_kvs == 7
        assert pg.edge_kvs == 7
        assert pg.node_kvs == 16
        assert pg.edge_labels == 2
        assert pg.edge_keys == 1
        assert pg.node_keys == 2
        assert pg.distinct_keys == 3


@pytest.mark.parametrize("model", [MODEL_RF, MODEL_NG, MODEL_SP])
class TestTable2FormulasMatchGeneratedData:
    def measured(self, graph, model):
        quads = list(transformer_for(model).transform(graph))
        return measure_rdf(quads)

    def test_named_graphs(self, graph, model):
        pg = measure_property_graph(graph)
        assert (
            self.measured(graph, model).named_graphs
            == predict_rdf(pg, model).named_graphs
        )

    def test_object_property_quads(self, graph, model):
        pg = measure_property_graph(graph)
        assert (
            self.measured(graph, model).object_property_quads
            == predict_rdf(pg, model).object_property_quads
        )

    def test_data_property_quads(self, graph, model):
        pg = measure_property_graph(graph)
        assert (
            self.measured(graph, model).data_property_quads
            == predict_rdf(pg, model).data_property_quads
        )

    def test_distinct_subjects_objects(self, graph, model):
        pg = measure_property_graph(graph)
        assert (
            self.measured(graph, model).distinct_subjects_objects
            == predict_rdf(pg, model).distinct_subjects_objects
        )

    def test_distinct_object_properties(self, graph, model):
        pg = measure_property_graph(graph)
        assert (
            self.measured(graph, model).distinct_object_properties
            == predict_rdf(pg, model).distinct_object_properties
        )

    def test_distinct_data_properties(self, graph, model):
        pg = measure_property_graph(graph)
        assert (
            self.measured(graph, model).distinct_data_properties
            == predict_rdf(pg, model).distinct_data_properties
        )

    def test_total_quads(self, graph, model):
        pg = measure_property_graph(graph)
        assert (
            self.measured(graph, model).total_quads
            == predict_rdf(pg, model).total_quads
        )


class TestModelRelationships:
    """Table 7's headline: SP has exactly 2*E more triples than NG."""

    def test_sp_minus_ng_is_twice_edges(self, graph):
        pg = measure_property_graph(graph)
        ng = predict_rdf(pg, MODEL_NG).total_quads
        sp = predict_rdf(pg, MODEL_SP).total_quads
        assert sp - ng == 2 * pg.edges

    def test_rf_is_largest(self, graph):
        pg = measure_property_graph(graph)
        totals = {
            model: predict_rdf(pg, model).total_quads
            for model in (MODEL_RF, MODEL_NG, MODEL_SP)
        }
        assert totals[MODEL_RF] > totals[MODEL_SP] > totals[MODEL_NG]

    def test_sp_predicate_skew(self, graph):
        """SP's distinct object-properties grow with E (the skew the
        paper calls out as unusual for RDF datasets)."""
        pg = measure_property_graph(graph)
        sp = predict_rdf(pg, MODEL_SP)
        ng = predict_rdf(pg, MODEL_NG)
        assert sp.distinct_object_properties == pg.edge_labels + pg.edges + 1
        assert ng.distinct_object_properties == pg.edge_labels

    def test_ng_proportion_one_quad_per_graph(self, graph):
        pg = measure_property_graph(graph)
        ng = predict_rdf(pg, MODEL_NG)
        assert ng.named_graphs == ng.object_property_quads


class TestTable2Rendering:
    def test_as_table2_row(self, graph):
        pg = measure_property_graph(graph)
        row = predict_rdf(pg, MODEL_NG).as_table2_row()
        assert row["Named Graphs"] == pg.edges
        assert row["Obj-prop triples/quads"] == pg.edges

    def test_unknown_model_rejected(self, graph):
        with pytest.raises(ValueError):
            predict_rdf(measure_property_graph(graph), "XX")


class TestTable7Breakdown:
    def test_per_label_counts(self, graph):
        vocab = PgVocabulary()
        quads = list(transformer_for(MODEL_NG, vocab).transform(graph))
        row = table7_row(quads, vocab)
        assert row["follows"] == 7
        assert row["knows"] == 7
        assert row["since"] == 7
        assert row["name"] == 8
        assert row["total"] == len(quads)
