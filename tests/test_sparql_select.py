"""Evaluator tests: SELECT over BGPs, filters, optional, union, etc."""

import pytest

from repro.rdf import IRI, Literal
from repro.sparql.errors import EvaluationError

EX = "http://ex/"


def values_of(result, var):
    return sorted(
        term.value if isinstance(term, IRI) else term.lexical
        for term in result.column(var)
        if term is not None
    )


class TestBgp:
    def test_single_pattern(self, social_engine):
        result = social_engine.select("SELECT ?x WHERE { ?x ex:knows ex:carol }")
        assert values_of(result, "x") == [EX + "alice", EX + "bob"]

    def test_two_pattern_join(self, social_engine):
        result = social_engine.select(
            "SELECT ?name WHERE { ?x ex:knows ex:carol . ?x ex:name ?name }"
        )
        assert values_of(result, "name") == ["Alice", "Bob"]

    def test_triangle(self, social_engine):
        result = social_engine.select(
            "SELECT ?x WHERE { ?x ex:knows ?y . ?y ex:knows ?z . "
            "?z ex:knows ?x }"
        )
        assert values_of(result, "x") == [
            EX + "alice", EX + "bob", EX + "carol",
        ]

    def test_unknown_constant_yields_empty(self, social_engine):
        result = social_engine.select(
            "SELECT ?x WHERE { ?x ex:knows ex:nobody }"
        )
        assert len(result) == 0

    def test_variable_predicate(self, social_engine):
        result = social_engine.select(
            "SELECT ?p WHERE { ex:alice ?p ex:bob }"
        )
        assert EX + "knows" in values_of(result, "p")

    def test_repeated_variable_in_pattern(self, social_engine):
        # No one knows themselves.
        result = social_engine.select("SELECT ?x WHERE { ?x ex:knows ?x }")
        assert len(result) == 0

    def test_select_star(self, social_engine):
        result = social_engine.select("SELECT * WHERE { ?x ex:knows ?y }")
        assert set(result.variables) == {"x", "y"}
        assert len(result) == 4

    def test_ask(self, social_engine):
        assert social_engine.ask("ASK { ex:alice ex:knows ex:bob }")
        assert not social_engine.ask("ASK { ex:bob ex:knows ex:alice }")

    def test_construct(self, social_engine):
        triples = social_engine.construct(
            "CONSTRUCT { ?y ex:knownBy ?x } WHERE { ?x ex:knows ?y }"
        )
        assert len(triples) == 4
        assert all(t.predicate == IRI(EX + "knownBy") for t in triples)


class TestFilters:
    def test_numeric_filter(self, social_engine):
        result = social_engine.select(
            "SELECT ?x WHERE { ?x ex:age ?a FILTER (?a > 25) }"
        )
        assert values_of(result, "x") == [EX + "bob", EX + "carol"]

    def test_equality_filter_on_string(self, social_engine):
        result = social_engine.select(
            'SELECT ?x WHERE { ?x ex:name ?n FILTER (?n = "Bob") }'
        )
        assert values_of(result, "x") == [EX + "bob"]

    def test_isliteral_filter(self, social_engine):
        result = social_engine.select(
            "SELECT ?v WHERE { ex:alice ?p ?v FILTER isLiteral(?v) }"
        )
        assert sorted(t.lexical for t in result.column("v")) == ["23", "Alice"]

    def test_isiri_filter(self, social_engine):
        result = social_engine.select(
            "SELECT ?v WHERE { ex:alice ?p ?v FILTER isIRI(?v) }"
        )
        assert values_of(result, "v") == [EX + "bob", EX + "bob", EX + "carol"]

    def test_boolean_connectives(self, social_engine):
        result = social_engine.select(
            "SELECT ?x WHERE { ?x ex:age ?a FILTER (?a > 25 && ?a < 29) }"
        )
        assert values_of(result, "x") == [EX + "carol"]

    def test_filter_error_drops_solution(self, social_engine):
        # Comparing a string-valued ?v numerically errors -> dropped.
        result = social_engine.select(
            "SELECT ?v WHERE { ex:alice ?p ?v FILTER (?v > 5) }"
        )
        assert values_of(result, "v") == ["23"]

    def test_in_operator(self, social_engine):
        result = social_engine.select(
            'SELECT ?x WHERE { ?x ex:name ?n FILTER (?n IN ("Bob", "Carol")) }'
        )
        assert len(result) == 2

    def test_not_in_operator(self, social_engine):
        result = social_engine.select(
            'SELECT ?x WHERE { ?x ex:name ?n FILTER (?n NOT IN ("Bob")) }'
        )
        assert len(result) == 2

    def test_regex_filter(self, social_engine):
        result = social_engine.select(
            'SELECT ?n WHERE { ?x ex:name ?n FILTER regex(?n, "^[AB]") }'
        )
        assert values_of(result, "n") == ["Alice", "Bob"]

    def test_filter_applies_to_whole_group(self, social_engine):
        # Filter written before the pattern it constrains still applies.
        result = social_engine.select(
            "SELECT ?x WHERE { FILTER (?a > 25) ?x ex:age ?a }"
        )
        assert len(result) == 2


class TestOptionalUnionBindValues:
    def test_optional_binds_when_present(self, social_engine):
        result = social_engine.select(
            "SELECT ?x ?since WHERE { ?x ex:name ?n "
            "OPTIONAL { ?g ex:since ?since } }"
        )
        assert len(result) == 3
        assert all(row["since"] is not None for row in result)

    def test_optional_leaves_unbound(self, social_engine):
        result = social_engine.select(
            "SELECT ?x ?w WHERE { ?x ex:name ?n OPTIONAL { ?x ex:wife ?w } }"
        )
        assert len(result) == 3
        assert all(row["w"] is None for row in result)

    def test_bound_filter_with_optional(self, social_engine):
        result = social_engine.select(
            "SELECT ?x WHERE { ?x ex:name ?n OPTIONAL { ?x ex:wife ?w } "
            "FILTER (!BOUND(?w)) }"
        )
        assert len(result) == 3

    def test_union(self, social_engine):
        result = social_engine.select(
            "SELECT ?v WHERE { { ex:alice ex:name ?v } UNION "
            "{ ex:alice ex:age ?v } }"
        )
        assert values_of(result, "v") == ["23", "Alice"]

    def test_bind(self, social_engine):
        result = social_engine.select(
            "SELECT ?next WHERE { ex:alice ex:age ?a BIND(?a + 1 AS ?next) }"
        )
        assert result.scalar().to_python() == 24

    def test_bind_error_leaves_unbound(self, social_engine):
        result = social_engine.select(
            "SELECT ?bad WHERE { ex:alice ex:name ?n BIND(?n + 1 AS ?bad) }"
        )
        assert result.rows[0][0] is None

    def test_values(self, social_engine):
        result = social_engine.select(
            "SELECT ?x ?n WHERE { VALUES ?x { ex:alice ex:bob } "
            "?x ex:name ?n }"
        )
        assert values_of(result, "n") == ["Alice", "Bob"]

    def test_minus(self, social_engine):
        result = social_engine.select(
            "SELECT ?x WHERE { ?x ex:name ?n MINUS { ?x ex:knows ex:carol } }"
        )
        assert values_of(result, "x") == [EX + "carol"]

    def test_exists_filter(self, social_engine):
        result = social_engine.select(
            "SELECT ?x WHERE { ?x ex:name ?n "
            "FILTER EXISTS { ?x ex:knows ex:carol } }"
        )
        assert values_of(result, "x") == [EX + "alice", EX + "bob"]

    def test_not_exists_filter(self, social_engine):
        result = social_engine.select(
            "SELECT ?x WHERE { ?x ex:name ?n "
            "FILTER NOT EXISTS { ?x ex:knows ex:carol } }"
        )
        assert values_of(result, "x") == [EX + "carol"]


class TestModifiers:
    def test_order_by(self, social_engine):
        result = social_engine.select(
            "SELECT ?n WHERE { ?x ex:age ?a . ?x ex:name ?n } ORDER BY ?a"
        )
        assert [t.lexical for t in result.column("n")] == [
            "Alice", "Carol", "Bob",
        ]

    def test_order_by_desc(self, social_engine):
        result = social_engine.select(
            "SELECT ?n WHERE { ?x ex:age ?a . ?x ex:name ?n } "
            "ORDER BY DESC(?a)"
        )
        assert [t.lexical for t in result.column("n")] == [
            "Bob", "Carol", "Alice",
        ]

    def test_limit_offset(self, social_engine):
        result = social_engine.select(
            "SELECT ?n WHERE { ?x ex:name ?n } ORDER BY ?n LIMIT 1 OFFSET 1"
        )
        assert values_of(result, "n") == ["Bob"]

    def test_distinct(self, social_engine):
        result = social_engine.select(
            "SELECT DISTINCT ?x WHERE { ?x ex:knows ?y }"
        )
        assert len(result) == 3  # alice appears twice without DISTINCT

    def test_subquery_with_limit(self, social_engine):
        result = social_engine.select(
            "SELECT ?n WHERE { { SELECT ?x WHERE { ?x ex:knows ex:carol } } "
            "?x ex:name ?n }"
        )
        assert values_of(result, "n") == ["Alice", "Bob"]


class TestEngineApi:
    def test_default_model_required(self, social_engine):
        from repro.store import SemanticNetwork
        from repro.sparql import SparqlEngine

        engine = SparqlEngine(SemanticNetwork())
        with pytest.raises(EvaluationError):
            engine.select("SELECT ?x WHERE { ?x ?p ?o }")

    def test_select_on_ask_query_rejected(self, social_engine):
        with pytest.raises(EvaluationError):
            social_engine.select("ASK { ?x ?p ?o }")

    def test_prepared_query(self, social_engine):
        prepared = social_engine.prepare("SELECT ?x WHERE { ?x ex:name ?n }")
        assert len(prepared.run()) == 3
        assert len(prepared.run()) == 3  # reusable

    def test_scalar_errors_on_multiple_rows(self, social_engine):
        result = social_engine.select("SELECT ?x WHERE { ?x ex:name ?n }")
        with pytest.raises(ValueError):
            result.scalar()

    def test_python_rows(self, social_engine):
        result = social_engine.select(
            "SELECT ?a WHERE { ex:alice ex:age ?a }"
        )
        assert result.python_rows() == [(23,)]

    def test_invalid_graph_semantics_rejected(self):
        from repro.store import SemanticNetwork
        from repro.sparql import SparqlEngine

        with pytest.raises(ValueError):
            SparqlEngine(SemanticNetwork(), default_graph_semantics="bogus")


class TestDescribe:
    def test_describe_constant(self, social_engine):
        triples = social_engine.query("DESCRIBE ex:alice")
        subjects = {t.subject for t in triples}
        assert subjects == {IRI(EX + "alice")}
        predicates = {t.predicate.value for t in triples}
        assert EX + "name" in predicates and EX + "knows" in predicates

    def test_describe_variable_with_where(self, social_engine):
        triples = social_engine.query(
            'DESCRIBE ?x WHERE { ?x ex:name "Bob" }'
        )
        assert {t.subject for t in triples} == {IRI(EX + "bob")}

    def test_describe_unknown_resource(self, social_engine):
        assert social_engine.query("DESCRIBE ex:nobody") == []

    def test_describe_multiple_targets(self, social_engine):
        triples = social_engine.query("DESCRIBE ex:alice ex:bob")
        subjects = {t.subject.value for t in triples}
        assert subjects == {EX + "alice", EX + "bob"}


class TestEnumeratePaths:
    def test_paths_enumerated(self, social_engine):
        from repro.propertygraph import PropertyGraph
        from repro.propertygraph.traversal import enumerate_paths

        graph = PropertyGraph()
        for i in (1, 2, 3):
            graph.add_vertex(i)
        graph.add_edge(1, "p", 2)
        graph.add_edge(2, "p", 3)
        graph.add_edge(1, "p", 3)
        paths = enumerate_paths(graph, 1, "p", 1, 2)
        assert sorted(paths) == [[1, 2], [1, 2, 3], [1, 3]]

    def test_limit(self, social_engine):
        from repro.propertygraph import PropertyGraph
        from repro.propertygraph.traversal import enumerate_paths

        graph = PropertyGraph()
        graph.add_vertex(1)
        graph.add_edge(1, "p", 1)  # self loop: infinite walks
        paths = enumerate_paths(graph, 1, "p", 1, 5, limit=3)
        assert len(paths) == 3

    def test_invalid_bounds(self, social_engine):
        from repro.propertygraph import PropertyGraph
        from repro.propertygraph.traversal import enumerate_paths

        graph = PropertyGraph()
        graph.add_vertex(1)
        import pytest as _pytest
        with _pytest.raises(ValueError):
            enumerate_paths(graph, 1, "p", 0, 2)
        with _pytest.raises(ValueError):
            enumerate_paths(graph, 1, "p", 3, 2)
