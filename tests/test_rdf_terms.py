"""Unit tests for RDF terms."""

import pytest

from repro.rdf import IRI, BlankNode, Literal, TermError
from repro.rdf.terms import XSD_BOOLEAN, XSD_DECIMAL, XSD_DOUBLE, XSD_INT, XSD_STRING


class TestIRI:
    def test_value_roundtrip(self):
        iri = IRI("http://pg/v1")
        assert iri.value == "http://pg/v1"

    def test_equality_and_hash(self):
        assert IRI("http://x/a") == IRI("http://x/a")
        assert IRI("http://x/a") != IRI("http://x/b")
        assert hash(IRI("http://x/a")) == hash(IRI("http://x/a"))

    def test_not_equal_to_literal_with_same_text(self):
        assert IRI("http://x/a") != Literal("http://x/a")
        assert hash(IRI("http://x/a")) != hash(Literal("http://x/a"))

    def test_empty_rejected(self):
        with pytest.raises(TermError):
            IRI("")

    @pytest.mark.parametrize("bad", ["a b", "a<b", "a>b", 'a"b', "a\nb", "a{b}"])
    def test_invalid_characters_rejected(self, bad):
        with pytest.raises(TermError):
            IRI(bad)

    def test_n3(self):
        assert IRI("http://pg/v1").n3() == "<http://pg/v1>"

    def test_immutable(self):
        iri = IRI("http://x/a")
        with pytest.raises(AttributeError):
            iri.value = "http://x/b"

    def test_type_predicates(self):
        iri = IRI("http://x/a")
        assert iri.is_iri() and not iri.is_blank() and not iri.is_literal()

    def test_ordering(self):
        assert IRI("http://x/a") < IRI("http://x/b")


class TestBlankNode:
    def test_label(self):
        assert BlankNode("b1").label == "b1"

    def test_fresh_labels_unique(self):
        assert BlankNode() != BlankNode()

    def test_equality(self):
        assert BlankNode("x") == BlankNode("x")
        assert BlankNode("x") != BlankNode("y")

    def test_n3(self):
        assert BlankNode("n1").n3() == "_:n1"

    def test_invalid_label(self):
        with pytest.raises(TermError):
            BlankNode("has space")

    def test_not_equal_to_iri(self):
        assert BlankNode("a") != IRI("http://x/a")


class TestLiteral:
    def test_plain_string_defaults_to_xsd_string(self):
        lit = Literal("Amy")
        assert lit.datatype.value == XSD_STRING
        assert lit.language is None
        assert lit.to_python() == "Amy"

    def test_language_tagged(self):
        lit = Literal("train", language="en-US")
        assert lit.language == "en-us"  # language tags are case-insensitive
        assert lit.datatype is None

    def test_language_and_datatype_mutually_exclusive(self):
        with pytest.raises(TermError):
            Literal("x", datatype=IRI(XSD_STRING), language="en")

    def test_int_literal(self):
        lit = Literal("23", IRI(XSD_INT))
        assert lit.to_python() == 23
        assert lit.is_numeric()

    def test_numeric_canonicalization(self):
        assert Literal("023", IRI(XSD_INT)) == Literal("23", IRI(XSD_INT))
        assert Literal(" 23 ", IRI(XSD_INT)).lexical == "23"

    def test_double_canonicalization(self):
        assert Literal("1.50", IRI(XSD_DOUBLE)) == Literal("1.5", IRI(XSD_DOUBLE))

    def test_decimal(self):
        lit = Literal("2.50", IRI(XSD_DECIMAL))
        assert lit.to_python() == 2.5

    def test_boolean_canonicalization(self):
        assert Literal("1", IRI(XSD_BOOLEAN)).lexical == "true"
        assert Literal("0", IRI(XSD_BOOLEAN)).to_python() is False

    def test_invalid_numeric_rejected(self):
        with pytest.raises(TermError):
            Literal("abc", IRI(XSD_INT))

    def test_invalid_boolean_rejected(self):
        with pytest.raises(TermError):
            Literal("maybe", IRI(XSD_BOOLEAN))

    def test_from_python(self):
        assert Literal.from_python(23).to_python() == 23
        assert Literal.from_python(True).lexical == "true"
        assert Literal.from_python(2.5).to_python() == 2.5
        assert Literal.from_python("MIT").lexical == "MIT"

    def test_from_python_bool_checked_before_int(self):
        # bool is a subclass of int; make sure True maps to xsd:boolean.
        assert Literal.from_python(True).datatype.value == XSD_BOOLEAN

    def test_from_python_unsupported(self):
        with pytest.raises(TermError):
            Literal.from_python(object())

    def test_n3_plain(self):
        assert Literal("Amy").n3() == '"Amy"'

    def test_n3_escapes(self):
        assert Literal('say "hi"\n').n3() == '"say \\"hi\\"\\n"'

    def test_n3_typed(self):
        assert Literal("23", IRI(XSD_INT)).n3() == f'"23"^^<{XSD_INT}>'

    def test_n3_language(self):
        assert Literal("train", language="en-us").n3() == '"train"@en-us'

    def test_datatype_distinguishes(self):
        assert Literal("23") != Literal("23", IRI(XSD_INT))

    def test_is_plain_string(self):
        assert Literal("x").is_plain_string()
        assert not Literal("23", IRI(XSD_INT)).is_plain_string()
        assert not Literal("x", language="en").is_plain_string()

    def test_n3_control_characters_escaped(self):
        # \f and \x0b would break line-oriented N-Quads if emitted raw.
        lit = Literal("a\fb\x0bc")
        assert "\f" not in lit.n3() and "\x0b" not in lit.n3()
        assert lit.n3() == '"a\\u000Cb\\u000Bc"'
