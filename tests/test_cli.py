"""Tests for the command-line interface."""

import json
import subprocess
import sys

import pytest

from repro.cli import main


@pytest.fixture
def csv_graph(tmp_path):
    edges = tmp_path / "edges.csv"
    edges.write_text(
        "start_vertex,edge,label,end_vertex\n"
        "1,3,follows,2\n"
        "1,4,knows,2\n"
    )
    kvs = tmp_path / "kvs.csv"
    kvs.write_text(
        "obj_id,kind,key,type,value\n"
        "1,v,name,VARCHAR,Amy\n"
        "1,v,age,NUMBER,23\n"
        "2,v,name,VARCHAR,Mira\n"
        "3,e,since,NUMBER,2007\n"
    )
    return str(edges), str(kvs)


class TestTransform:
    def test_transform_to_stdout(self, csv_graph, capsys):
        edges, kvs = csv_graph
        assert main(["transform", "--edges", edges, "--kvs", kvs,
                     "--model", "NG"]) == 0
        out = capsys.readouterr().out
        assert "<http://pg/e3>" in out
        assert '"2007"' in out

    def test_transform_to_file(self, csv_graph, tmp_path):
        edges, kvs = csv_graph
        output = str(tmp_path / "out.nq")
        assert main(["transform", "--edges", edges, "--kvs", kvs,
                     "--model", "SP", "-o", output]) == 0
        text = open(output).read()
        assert "subPropertyOf" in text

    def test_transform_requires_input(self):
        with pytest.raises(SystemExit):
            main(["transform"])


class TestQuery:
    @pytest.fixture
    def nquads(self, csv_graph, tmp_path):
        edges, kvs = csv_graph
        output = str(tmp_path / "data.nq")
        main(["transform", "--edges", edges, "--kvs", kvs, "-o", output])
        return output

    def test_table_output(self, nquads, capsys):
        assert main([
            "query", nquads,
            "-q", "SELECT ?n WHERE { ?x k:name ?n } ORDER BY ?n",
        ]) == 0
        out = capsys.readouterr().out
        assert '"Amy"' in out and '"Mira"' in out

    def test_json_output(self, nquads, capsys):
        main(["query", nquads, "--format", "json",
              "-q", 'SELECT ?x WHERE { ?x k:name "Amy" }'])
        document = json.loads(capsys.readouterr().out)
        assert document["results"]["bindings"][0]["x"]["value"] == "http://pg/v1"

    def test_csv_output(self, nquads, capsys):
        main(["query", nquads, "--format", "csv",
              "-q", 'SELECT ?x WHERE { ?x k:name "Amy" }'])
        assert "http://pg/v1" in capsys.readouterr().out

    def test_query_file(self, nquads, tmp_path, capsys):
        query_path = tmp_path / "q.rq"
        query_path.write_text("SELECT ?s WHERE { ?s r:follows ?o }")
        main(["query", nquads, "-f", str(query_path)])
        assert "v1" in capsys.readouterr().out

    def test_explain(self, nquads, capsys):
        main(["query", nquads, "--explain",
              "-q", "SELECT ?s WHERE { ?s r:follows ?o }"])
        assert "index" in capsys.readouterr().out

    def test_query_requires_text(self, nquads):
        with pytest.raises(SystemExit):
            main(["query", nquads])


class TestStats:
    def test_pg_stats(self, csv_graph, capsys):
        edges, kvs = csv_graph
        assert main(["stats", "--edges", edges, "--kvs", kvs]) == 0
        out = capsys.readouterr().out
        assert "vertices:  2" in out
        assert "edges:     2" in out

    def test_nquads_stats(self, csv_graph, tmp_path, capsys):
        edges, kvs = csv_graph
        output = str(tmp_path / "data.nq")
        main(["transform", "--edges", edges, "--kvs", kvs, "-o", output])
        capsys.readouterr()
        assert main(["stats", "--nquads", output]) == 0
        assert "named graphs:       2" in capsys.readouterr().out


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--egos", "4"]) == 0
        out = capsys.readouterr().out
        assert "EQ12" in out


class TestModuleEntryPoint:
    def test_python_dash_m(self, csv_graph):
        edges, kvs = csv_graph
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "stats", "--edges", edges],
            capture_output=True, text=True, timeout=60,
        )
        assert completed.returncode == 0
        assert "vertices" in completed.stdout


class TestServe:
    def test_serve_loads_and_answers(self, csv_graph, tmp_path):
        import json
        import threading
        import urllib.parse
        import urllib.request

        from repro.cli import build_parser, main
        from repro.server import make_server
        from repro.sparql import SparqlEngine
        from repro.store import SemanticNetwork
        from repro.rdf import parse_nquads

        edges, kvs = csv_graph
        data = str(tmp_path / "serve.nq")
        main(["transform", "--edges", edges, "--kvs", kvs, "-o", data])

        # Build the same engine the serve command would, on an ephemeral
        # port (serve_forever would block the test).
        network = SemanticNetwork()
        network.create_model("data", ["PCSGM", "PSCGM", "SPCGM", "GSPCM"])
        with open(data) as handle:
            network.bulk_load("data", parse_nquads(handle))
        engine = SparqlEngine(
            network, prefixes={"k": "http://pg/k/"}, default_model="data"
        )
        server, port = make_server(engine)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            query = urllib.parse.quote(
                'SELECT ?x WHERE { ?x k:name "Amy" }'
            )
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/sparql?query={query}", timeout=10
            ) as response:
                document = json.loads(response.read())
            assert document["results"]["bindings"][0]["x"]["value"] == (
                "http://pg/v1"
            )
        finally:
            server.shutdown()
            server.server_close()

    def test_serve_in_parser(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "x.nq", "--port", "0"])
        assert args.port == 0 and args.data == "x.nq"

    @pytest.mark.parametrize("value", ["0", "-3"])
    def test_serve_rejects_bad_max_inflight(self, csv_graph, tmp_path, value):
        edges, kvs = csv_graph
        data = str(tmp_path / "serve.nq")
        main(["transform", "--edges", edges, "--kvs", kvs, "-o", data])
        with pytest.raises(SystemExit, match="max-inflight"):
            main(["serve", data, "--max-inflight", value])

    def test_serve_rejects_bad_timeout(self, csv_graph, tmp_path):
        edges, kvs = csv_graph
        data = str(tmp_path / "serve.nq")
        main(["transform", "--edges", edges, "--kvs", kvs, "-o", data])
        with pytest.raises(SystemExit, match="timeout"):
            main(["serve", data, "--timeout", "0"])
