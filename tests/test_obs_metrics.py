"""Unit tests for the repro.obs metrics registry and collectors."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import (
    MetricsRegistry,
    QueryCollector,
    SlowQueryLog,
)
from repro.obs import metrics
from repro.rdf import IRI, Literal, Quad
from repro.sparql import SparqlEngine
from repro.store import SemanticNetwork

EX = "http://ex/"


def ex(name):
    return IRI(EX + name)


@pytest.fixture(autouse=True)
def _clean_global_state():
    """Each test starts (and leaves) with metrics off and empty."""
    metrics.disable()
    metrics.reset()
    yield
    metrics.disable()
    metrics.reset()


def small_engine(**kwargs) -> SparqlEngine:
    network = SemanticNetwork()
    network.create_model("m")
    network.bulk_load("m", [
        Quad(ex("a"), ex("knows"), ex("b")),
        Quad(ex("b"), ex("knows"), ex("c")),
        Quad(ex("a"), ex("name"), Literal("A")),
    ])
    return SparqlEngine(
        network, prefixes={"ex": EX}, default_model="m", **kwargs
    )


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------


class TestRegistry:
    def test_counter_increment_and_default(self):
        registry = MetricsRegistry()
        assert registry.counter("x") == 0
        registry.inc("x")
        registry.inc("x", 4)
        assert registry.counter("x") == 5
        assert registry.counters == {"x": 5}

    def test_gauges(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 2.0)
        assert registry.gauge("g") == 2.0
        registry.gauge_max("peak", 3)
        registry.gauge_max("peak", 1)  # lower: ignored
        registry.gauge_max("peak", 7)
        assert registry.gauge("peak") == 7

    def test_timer_aggregation(self):
        registry = MetricsRegistry()
        registry.observe("t", 0.1)
        registry.observe("t", 0.3)
        stats = registry.timer_stats("t")
        assert stats.count == 2
        assert stats.total == pytest.approx(0.4)
        assert stats.mean == pytest.approx(0.2)
        assert stats.min == pytest.approx(0.1)
        assert stats.max == pytest.approx(0.3)

    def test_timer_context_manager(self):
        registry = MetricsRegistry()
        with registry.timer("work"):
            pass
        stats = registry.timer_stats("work")
        assert stats.count == 1
        assert stats.total >= 0.0

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.set_gauge("g", 1)
        registry.observe("t", 0.5)
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot == {"counters": {}, "gauges": {}, "timers": {}}

    def test_snapshot_is_json_ready_copy(self):
        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.observe("t", 0.25)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["timers"]["t"]["count"] == 1
        # Mutating the snapshot must not touch the registry.
        snapshot["counters"]["c"] = 99
        assert registry.counter("c") == 2

    def test_thread_safety_under_executor(self):
        """`+=` from many threads must not lose increments."""
        registry = MetricsRegistry()
        increments_per_thread = 2000
        workers = 8

        def hammer():
            for _ in range(increments_per_thread):
                registry.inc("hits")
                registry.gauge_max("peak", threading.get_ident() % 97)
                registry.observe("lat", 0.001)

        with ThreadPoolExecutor(max_workers=workers) as pool:
            for future in [pool.submit(hammer) for _ in range(workers)]:
                future.result()
        assert registry.counter("hits") == workers * increments_per_thread
        assert registry.timer_stats("lat").count == workers * increments_per_thread


# ----------------------------------------------------------------------
# Module-level enable/disable and routing
# ----------------------------------------------------------------------


class TestGlobalState:
    def test_disabled_mode_is_a_true_noop(self):
        """With metrics off and no collector, nothing is recorded."""
        assert not metrics.is_active()
        metrics.inc("index.rows_scanned", 10)
        metrics.record_scan("PCSG", 2, 100, 50)
        metrics.record_join("NLJ")
        metrics.record_frontier(4)
        assert metrics.registry().counters == {}

    def test_queries_record_nothing_when_disabled(self):
        engine = small_engine()
        engine.select("SELECT ?x WHERE { ?x ex:knows ?y }")
        assert metrics.snapshot() == {
            "counters": {},
            "gauges": {},
            "timers": {},
        }

    def test_enable_routes_query_counters(self):
        engine = small_engine()
        metrics.enable()
        engine.select("SELECT ?x WHERE { ?x ex:knows ?y }")
        counters = metrics.registry().counters
        assert counters["query.count"] == 1
        assert counters["index.rows_scanned"] >= counters["index.rows_matched"]
        assert counters["store.scans"] >= 1
        timer = metrics.registry().timer_stats("query.seconds")
        assert timer is not None and timer.count == 1

    def test_enabled_context_restores_previous_state(self):
        assert not metrics.is_enabled()
        with metrics.enabled(fresh=True) as registry:
            assert metrics.is_enabled()
            registry.inc("inside")
        assert not metrics.is_enabled()
        # fresh=True cleared anything recorded before entry
        assert metrics.registry().counter("inside") == 1

    def test_reset_between_queries(self):
        engine = small_engine()
        metrics.enable()
        engine.select("SELECT ?x WHERE { ?x ex:knows ?y }")
        first = metrics.registry().counter("index.rows_scanned")
        assert first > 0
        metrics.reset()
        assert metrics.registry().counter("index.rows_scanned") == 0
        engine.select("SELECT ?x WHERE { ?x ex:knows ?y }")
        assert metrics.registry().counter("index.rows_scanned") == first


# ----------------------------------------------------------------------
# Per-query collector
# ----------------------------------------------------------------------


class TestCollector:
    def test_collector_stack_is_thread_local(self):
        collector = QueryCollector()
        seen = {}

        def other_thread():
            seen["collector"] = metrics.current_collector()

        with metrics.collect(collector):
            assert metrics.current_collector() is collector
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
        assert seen["collector"] is None
        assert metrics.current_collector() is None

    def test_collector_counts_without_global_enable(self):
        engine = small_engine()
        collector = QueryCollector()
        with metrics.collect(collector):
            engine.select("SELECT ?x WHERE { ?x ex:knows ?y }")
        assert collector.counters["index.rows_scanned"] >= 1
        # Global registry untouched.
        assert metrics.registry().counters == {}

    def test_operator_nesting_attributes_to_innermost(self):
        collector = QueryCollector()
        outer = collector.begin_operator("filter", detail="outer")
        inner = collector.begin_operator("pattern", detail="inner")
        collector.record_scan("PCSG", 1, 10, 7)
        collector.end_operator(rows_out=7)
        collector.record_scan("PSCG", 0, 5, 5)
        collector.end_operator(rows_out=3)
        assert inner.rows_scanned == 10 and inner.range_scans == 1
        assert outer.rows_scanned == 5 and outer.full_scans == 1
        assert outer.rows_out == 3 and inner.rows_out == 7

    def test_finish_freezes_stats(self):
        collector = QueryCollector()
        collector.inc("filter.pushdown")
        record = collector.begin_operator("pattern", detail="?s ?p ?o")
        collector.end_operator(rows_out=2)
        stats = collector.finish(wall_seconds=0.5, rows=2)
        assert stats.rows == 2
        assert stats.wall_seconds == 0.5
        assert stats.counter("filter.pushdown") == 1
        assert stats.operators == [record]
        assert "2 rows" in stats.summary()

    def test_engine_collect_stats_attaches_query_stats(self):
        engine = small_engine(collect_stats=True)
        result = engine.select("SELECT ?x WHERE { ?x ex:knows ?y }")
        assert result.stats is not None
        assert result.stats.rows == len(result)
        assert result.stats.operators
        as_dict = result.stats.to_dict()
        assert as_dict["rows"] == len(result)
        assert as_dict["operators"][0]["rows_scanned"] >= 1

    def test_stats_off_by_default(self):
        engine = small_engine()
        result = engine.select("SELECT ?x WHERE { ?x ex:knows ?y }")
        assert result.stats is None


# ----------------------------------------------------------------------
# Slow-query log
# ----------------------------------------------------------------------


class TestSlowQueryLog:
    def test_disabled_without_threshold(self):
        log = SlowQueryLog()
        assert not log.enabled
        assert not log.record("SELECT ...", 100.0, 1)
        assert log.entries == []

    def test_records_only_over_threshold(self):
        log = SlowQueryLog(threshold_seconds=0.5)
        assert not log.record("fast", 0.4, 1)
        assert log.record("slow", 0.6, 2)
        assert [e.query for e in log.entries] == ["slow"]
        assert log.entries[0].rows == 2

    def test_capacity_bound(self):
        log = SlowQueryLog(threshold_seconds=0.0, capacity=3)
        for i in range(5):
            log.record(f"q{i}", 1.0, 0)
        assert [e.query for e in log.entries] == ["q2", "q3", "q4"]

    def test_engine_records_slow_queries(self):
        engine = small_engine(slow_query_seconds=0.0)
        engine.select("SELECT ?x WHERE { ?x ex:knows ?y }")
        assert len(engine.slow_queries) == 1
        entry = engine.slow_queries.entries[0]
        assert "ex:knows" in entry.query
        assert entry.seconds >= 0.0

    def test_engine_skips_fast_queries(self):
        engine = small_engine(slow_query_seconds=60.0)
        engine.select("SELECT ?x WHERE { ?x ex:knows ?y }")
        assert len(engine.slow_queries) == 0


# ----------------------------------------------------------------------
# CI smoke: one bench query with metrics on, full counter catalogue
# ----------------------------------------------------------------------


@pytest.mark.obs
def test_bench_query_emits_expected_counters():
    """Run one paper benchmark query with metrics enabled and require
    every core operator counter to be present (the CI obs job runs
    exactly this with ``pytest -m obs``)."""
    from repro.core import PropertyGraphRdfStore
    from repro.datasets.twitter import (
        TwitterConfig,
        connected_tag,
        generate_twitter,
    )

    graph = generate_twitter(TwitterConfig(egos=4, seed=11))
    store = PropertyGraphRdfStore(model="NG")
    store.load(graph)
    tag = connected_tag(graph)
    query = store.queries.eq2(tag)  # tag lookup + one traversal hop
    with metrics.enabled(fresh=True) as registry:
        result = store.select(query)
        store.select(query)  # second run: timers must aggregate
    counters = registry.counters
    for name in (
        "query.count",
        "store.scans",
        "planner.estimates",
        "index.range_scans",
        "index.rows_scanned",
        "index.rows_matched",
        "join.nlj",
    ):
        assert counters.get(name, 0) > 0, f"counter {name} absent"
    assert registry.timer_stats("query.seconds").count == 2
