"""Evaluator tests: GRAPH clauses and dataset semantics."""

import pytest

from repro.rdf import IRI, Literal, Quad
from repro.store import SemanticNetwork
from repro.sparql import SparqlEngine

EX = "http://ex/"


def ex(name):
    return IRI(EX + name)


@pytest.fixture
def network():
    net = SemanticNetwork()
    net.create_model("m", index_specs=["PCSGM", "PSCGM", "GSPCM"])
    net.bulk_load(
        "m",
        [
            Quad(ex("a"), ex("p"), ex("b")),  # default graph
            Quad(ex("a"), ex("p"), ex("c"), ex("g1")),
            Quad(ex("g1"), ex("k"), Literal("v1"), ex("g1")),
            Quad(ex("b"), ex("p"), ex("c"), ex("g2")),
            Quad(ex("g2"), ex("k"), Literal("v2"), ex("g2")),
        ],
    )
    return net


def engine(net, semantics="union"):
    return SparqlEngine(
        net, prefixes={"ex": EX}, default_model="m",
        default_graph_semantics=semantics,
    )


class TestUnionSemantics:
    def test_pattern_outside_graph_sees_all_graphs(self, network):
        result = engine(network).select("SELECT ?s WHERE { ?s ex:p ?o }")
        assert len(result) == 3

    def test_strict_semantics_sees_default_only(self, network):
        result = engine(network, "strict").select(
            "SELECT ?s WHERE { ?s ex:p ?o }"
        )
        assert len(result) == 1
        assert result.rows[0][0] == ex("a")


class TestGraphClause:
    def test_graph_variable_binds_named_graphs_only(self, network):
        result = engine(network).select(
            "SELECT ?g WHERE { GRAPH ?g { ?s ex:p ?o } }"
        )
        graphs = sorted(t.value for t in result.column("g"))
        assert graphs == [EX + "g1", EX + "g2"]

    def test_graph_constant(self, network):
        result = engine(network).select(
            "SELECT ?s WHERE { GRAPH ex:g1 { ?s ex:p ?o } }"
        )
        assert result.rows == [(ex("a"),)]

    def test_graph_constant_unknown(self, network):
        result = engine(network).select(
            "SELECT ?s WHERE { GRAPH ex:missing { ?s ex:p ?o } }"
        )
        assert len(result) == 0

    def test_graph_var_shared_across_patterns(self, network):
        # The paper's NG idiom: the graph IRI is also a subject.
        result = engine(network).select(
            "SELECT ?o ?v WHERE { GRAPH ?g { ?s ex:p ?o . ?g ex:k ?v } }"
        )
        pairs = {
            (row["o"].value, row["v"].lexical) for row in result
        }
        assert pairs == {(EX + "c", "v1"), (EX + "c", "v2")}

    def test_graph_var_already_bound_by_earlier_pattern(self, network):
        result = engine(network).select(
            "SELECT ?s WHERE { ex:g1 ex:k ?v . GRAPH ex:g1 { ?s ex:p ?o } }"
        )
        assert result.rows == [(ex("a"),)]

    def test_nested_graph_patterns_join(self, network):
        result = engine(network).select(
            "SELECT ?v1 ?v2 WHERE { GRAPH ex:g1 { ?g1 ex:k ?v1 } "
            "GRAPH ex:g2 { ?g2 ex:k ?v2 } }"
        )
        assert len(result) == 1

    def test_strict_and_graph_clause_compose(self, network):
        eng = engine(network, "strict")
        result = eng.select(
            "SELECT ?s WHERE { ?s ex:p ?o . GRAPH ex:g2 { ?o ex:p ?c } }"
        )
        # default graph: a p b; g2: b p c
        assert result.rows == [(ex("a"),)]
