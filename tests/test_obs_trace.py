"""Tests for the hierarchical span tracer (repro.obs.trace).

Two promises matter most: when tracing is *off* the instrumented hot
paths allocate nothing and change nothing; when it is *on*, one trace
tree covers the whole request — parse, plan, every operator, lock
acquisition and (on a durable store) WAL append + fsync.
"""

import json
import os

import pytest

from repro.obs import trace
from repro.rdf import Quad
from repro.sparql import SparqlEngine
from repro.store import SemanticNetwork, open_durable

from .conftest import ex

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def _tracing_off():
    """Tests must not leak the process-wide tracing flag."""
    trace.disable()
    yield
    trace.disable()


class TestDisabledIsNoop:
    def test_span_returns_shared_singleton(self):
        # No allocation on the disabled path: every call hands back the
        # very same no-op object.
        first = trace.span("anything", key="value")
        second = trace.span("other")
        assert first is second
        assert first is trace.NOOP_SPAN

    def test_noop_span_contextmanager_and_set(self):
        with trace.span("untraced") as span:
            assert span.set("key", 1) is span
        assert not trace.is_active()
        assert trace.current_trace() is None
        assert trace.current_ids() == (None, None)

    def test_engine_results_identical_with_and_without_tracing(
        self, social_engine
    ):
        query = "SELECT ?n WHERE { ?x ex:name ?n } ORDER BY ?n"
        plain = social_engine.select(query)
        traced_engine = SparqlEngine(
            social_engine.network,
            prefixes={"ex": "http://ex/"},
            default_model="social",
            trace=True,
        )
        traced = traced_engine.select(query)
        assert plain.rows == traced.rows
        assert plain.variables == traced.variables

    def test_untraced_engine_attaches_no_trace(self, social_engine):
        result = social_engine.select("SELECT ?n WHERE { ?x ex:name ?n }")
        assert result.stats is None or result.stats.trace is None


class TestEngineTracing:
    def test_select_builds_span_tree(self, social_engine):
        engine = SparqlEngine(
            social_engine.network,
            prefixes={"ex": "http://ex/"},
            default_model="social",
            trace=True,
        )
        result = engine.select(
            "SELECT ?n WHERE { ?x ex:name ?n } ORDER BY ?n"
        )
        tree = result.stats.trace
        assert tree is not None
        root = tree.root
        assert root.name == "query"
        for name in ("parse", "execute", "plan", "op.IndexScan"):
            assert tree.find(name), f"missing span {name!r}"
        # The scan operator records its cardinalities.
        op = tree.find("op.IndexScan")[0]
        assert op.attributes["rows_out"] == 3
        # Every span is finished and carries the same trace id.
        for span in tree.spans:
            assert span.duration is not None
            assert span.trace_id == tree.trace_id

    def test_global_enable_traces_every_engine(self, social_engine):
        trace.enable()
        result = social_engine.select("SELECT ?n WHERE { ?x ex:name ?n }")
        assert result.stats.trace is not None
        trace.disable()
        result = social_engine.select("SELECT ?n WHERE { ?x ex:name ?n }")
        assert result.stats is None or result.stats.trace is None

    def test_explain_analyze_trace_lines(self, social_engine):
        analysis = social_engine.explain(
            "SELECT ?n WHERE { ?x ex:name ?n }", analyze=True, trace=True
        )
        text = "\n".join(analysis.lines)
        assert f"-- trace {analysis.stats.trace.trace_id} --" in text
        assert "op.IndexScan" in text

    def test_render_is_indented_tree(self, social_engine):
        engine = SparqlEngine(
            social_engine.network,
            prefixes={"ex": "http://ex/"},
            default_model="social",
            trace=True,
        )
        tree = engine.select(
            "SELECT ?n WHERE { ?x ex:name ?n }"
        ).stats.trace
        lines = tree.render().splitlines()
        assert lines[0].startswith("query  ")  # root at depth 0
        # Children are indented under the root.
        assert any(line.startswith("  parse") for line in lines)
        assert any(line.startswith("    op.IndexScan") for line in lines)

    def test_trace_serializes_to_json(self, social_engine):
        engine = SparqlEngine(
            social_engine.network,
            prefixes={"ex": "http://ex/"},
            default_model="social",
            trace=True,
        )
        tree = engine.select(
            "SELECT ?n WHERE { ?x ex:name ?n }"
        ).stats.trace
        document = json.loads(json.dumps(tree.to_dict()))
        assert document["trace_id"] == tree.trace_id
        assert len(document["spans"]) == len(tree)


class TestDurableTracing:
    def test_wal_spans_under_update(self, tmp_path):
        directory = os.path.join(str(tmp_path), "store")
        with trace.tracing("update") as tree:
            store = open_durable(directory)
            store.create_model("m")
            store.insert("m", Quad(ex("a"), ex("p"), ex("b")))
            store.checkpoint()
            store.close()
        assert tree.find("store.recover")
        log_spans = tree.find("store.log")
        assert [s.attributes["op"] for s in log_spans] == [
            "create_model", "insert",
        ]
        appends = tree.find("wal.append")
        assert appends and all(s.attributes["bytes"] > 0 for s in appends)
        assert tree.find("wal.fsync")
        assert tree.find("store.checkpoint")
        assert tree.find("snapshot.save")
        # wal.append nests under its store.log parent.
        assert appends[0].parent_id == log_spans[0].span_id

    def test_traced_query_pins_snapshot_without_locks(self, tmp_path):
        # MVCC contract: queries pin a snapshot (one span, carrying the
        # version) and never touch the store lock.
        directory = os.path.join(str(tmp_path), "store")
        store = open_durable(directory)
        store.create_model("m")
        store.insert("m", Quad(ex("a"), ex("p"), ex("b")))
        engine = SparqlEngine(store, default_model="m", trace=True)
        tree = engine.select(
            "SELECT ?s WHERE { ?s <http://ex/p> ?o }"
        ).stats.trace
        pins = tree.find("snapshot.pin")
        assert pins and pins[0].attributes["version"] == store.data_version
        assert not tree.find("lock.read.acquire")
        assert not tree.find("lock.write.acquire")
        store.close()

    def test_traced_update_sees_write_lock_spans(self, tmp_path):
        directory = os.path.join(str(tmp_path), "store")
        store = open_durable(directory)
        store.create_model("m")
        engine = SparqlEngine(store, default_model="m")
        with trace.tracing("update") as tree:
            engine.update(
                "INSERT DATA { <http://ex/a> <http://ex/p> <http://ex/b> }"
            )
        locks = tree.find("lock.write.acquire")
        assert locks and locks[0].attributes["acquired"] is True
        assert locks[0].attributes["wait_seconds"] >= 0.0
        store.close()


class TestTracingContext:
    def test_nesting_restores_previous_trace(self):
        with trace.tracing("outer") as outer:
            assert trace.current_trace() is outer
            with trace.tracing("inner") as inner:
                assert trace.current_trace() is inner
            assert trace.current_trace() is outer
        assert trace.current_trace() is None

    def test_exception_still_finishes_spans(self):
        with pytest.raises(ValueError):
            with trace.tracing("boom") as tree:
                with trace.span("child"):
                    raise ValueError("x")
        assert all(span.duration is not None for span in tree.spans)
        assert not trace.is_active()

    def test_adopt_trace_id(self):
        assert trace.adopt_trace_id("abc-123") == "abc-123"
        # Injection-looking or missing ids are replaced, not adopted.
        for bad in (None, "", "no spaces allowed", "x" * 65, "a\nb"):
            adopted = trace.adopt_trace_id(bad)
            assert adopted != bad and len(adopted) == 32


class TestTraceBuffer:
    def test_evicts_oldest(self):
        buffer = trace.TraceBuffer(capacity=2)
        trees = [trace.Trace() for _ in range(3)]
        for tree in trees:
            buffer.add(tree)
        assert len(buffer) == 2
        assert buffer.get(trees[0].trace_id) is None
        assert buffer.get(trees[1].trace_id) is trees[1]
        assert buffer.trace_ids() == [
            trees[1].trace_id, trees[2].trace_id,
        ]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            trace.TraceBuffer(capacity=0)
