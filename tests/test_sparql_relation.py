"""Unit tests for the Relation solution-bag machinery."""

import pytest

from repro.sparql.relation import Relation, join, left_join, minus, union


class TestRelationBasics:
    def test_unit(self):
        unit = Relation.unit()
        assert len(unit) == 1
        assert unit.variables == ()

    def test_cardinality_with_mults(self):
        rel = Relation(("x",), [(1,), (2,)], [3, 4])
        assert len(rel) == 2
        assert rel.cardinality == 7

    def test_mult_vector_length_checked(self):
        with pytest.raises(ValueError):
            Relation(("x",), [(1,)], [1, 2])

    def test_project_reorders_and_pads(self):
        rel = Relation(("x", "y"), [(1, 2)])
        projected = rel.project(["y", "z"])
        assert projected.variables == ("y", "z")
        assert projected.rows == [(2, None)]

    def test_distinct(self):
        rel = Relation(("x",), [(1,), (1,), (2,)])
        assert len(rel.distinct()) == 2

    def test_compact_merges_mults(self):
        rel = Relation(("x",), [(1,), (1,), (2,)])
        compacted = rel.compact()
        assert len(compacted) == 2
        assert compacted.cardinality == 3

    def test_extended(self):
        rel = Relation(("x",), [(1,), (2,)])
        extended = rel.extended("y", [10, 20])
        assert extended.rows == [(1, 10), (2, 20)]

    def test_extended_rejects_existing_var(self):
        with pytest.raises(ValueError):
            Relation(("x",), [(1,)]).extended("x", [2])


class TestJoin:
    def test_shared_variable_join(self):
        left = Relation(("x", "y"), [(1, 2), (3, 4)])
        right = Relation(("y", "z"), [(2, 20), (2, 21), (9, 99)])
        result = join(left, right)
        assert result.variables == ("x", "y", "z")
        assert sorted(result.rows) == [(1, 2, 20), (1, 2, 21)]

    def test_cartesian_when_no_shared_vars(self):
        left = Relation(("x",), [(1,), (2,)])
        right = Relation(("y",), [(10,)])
        result = join(left, right)
        assert sorted(result.rows) == [(1, 10), (2, 10)]

    def test_multiplicities_multiply(self):
        left = Relation(("x",), [(1,)], [3])
        right = Relation(("x",), [(1,)], [4])
        result = join(left, right)
        assert result.cardinality == 12

    def test_unbound_left_key_is_compatible(self):
        left = Relation(("x", "y"), [(None, 5)])
        right = Relation(("x",), [(1,)])
        result = join(left, right)
        # None is compatible; x gets filled from the right side.
        assert result.rows == [(1, 5)]

    def test_unbound_right_key_is_compatible(self):
        left = Relation(("x",), [(1,)])
        right = Relation(("x", "z"), [(None, 7)])
        result = join(left, right)
        assert result.rows == [(1, 7)]

    def test_join_with_unit(self):
        rel = Relation(("x",), [(1,), (2,)])
        assert sorted(join(Relation.unit(), rel).rows) == [(1,), (2,)]


class TestLeftJoin:
    def test_keeps_unmatched_left_rows(self):
        left = Relation(("x",), [(1,), (2,)])
        right = Relation(("x", "y"), [(1, 10)])
        result = left_join(left, right)
        assert sorted(result.rows, key=repr) == sorted(
            [(1, 10), (2, None)], key=repr
        )

    def test_matched_rows_not_duplicated(self):
        left = Relation(("x",), [(1,)])
        right = Relation(("x", "y"), [(1, 10), (1, 11)])
        result = left_join(left, right)
        assert len(result) == 2


class TestMinus:
    def test_removes_matching(self):
        left = Relation(("x",), [(1,), (2,)])
        right = Relation(("x",), [(1,)])
        assert minus(left, right).rows == [(2,)]

    def test_no_shared_vars_keeps_all(self):
        left = Relation(("x",), [(1,)])
        right = Relation(("y",), [(1,)])
        assert minus(left, right).rows == [(1,)]


class TestUnion:
    def test_aligns_variables(self):
        a = Relation(("x",), [(1,)])
        b = Relation(("y",), [(2,)])
        result = union([a, b])
        assert result.variables == ("x", "y")
        assert sorted(result.rows, key=repr) == sorted(
            [(1, None), (None, 2)], key=repr
        )

    def test_bag_semantics(self):
        a = Relation(("x",), [(1,)])
        b = Relation(("x",), [(1,)])
        assert union([a, b]).cardinality == 2
