"""Property tests for the bounded-memory latency histogram.

The contract under test (see :class:`repro.obs.metrics.TimerStats`):
quantile estimates computed from the log-spaced buckets always lie
within the bucket that contains the *exact* quantile of the observed
samples — off by at most one bucket boundary, never below the true
value, never above the largest observation.
"""

import json
import math
from bisect import bisect_left

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import BUCKET_BOUNDS, TimerStats

pytestmark = pytest.mark.obs

#: Spans below the first bound, across the log range, and into the
#: overflow bucket (the largest bound is ~134 s).
samples_strategy = st.lists(
    st.floats(
        min_value=1e-8,
        max_value=500.0,
        allow_nan=False,
        allow_infinity=False,
    ),
    min_size=1,
    max_size=200,
)


def exact_quantile(samples, q):
    """The reference quantile: the rank-ceil(q*n) smallest sample."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def bucket_of(value):
    """(lower, upper) bounds of the bucket holding ``value``."""
    index = bisect_left(BUCKET_BOUNDS, value)
    lower = 0.0 if index == 0 else BUCKET_BOUNDS[index - 1]
    upper = (
        BUCKET_BOUNDS[index]
        if index < len(BUCKET_BOUNDS)
        else math.inf
    )
    return lower, upper


@settings(max_examples=200, deadline=None)
@given(
    samples=samples_strategy,
    q=st.sampled_from([0.5, 0.9, 0.95, 0.99, 1.0]),
)
def test_quantile_within_one_bucket_of_exact(samples, q):
    stats = TimerStats()
    for sample in samples:
        stats.observe(sample)
    estimate = stats.quantile(q)
    true_value = exact_quantile(samples, q)
    lower, upper = bucket_of(true_value)
    assert true_value <= estimate, (
        f"estimate {estimate} below exact quantile {true_value}"
    )
    assert estimate <= upper, (
        f"estimate {estimate} left the exact quantile's bucket "
        f"({lower}, {upper}]"
    )
    assert estimate <= max(samples)


@settings(max_examples=100, deadline=None)
@given(samples=samples_strategy)
def test_buckets_account_for_every_observation(samples):
    stats = TimerStats()
    for sample in samples:
        stats.observe(sample)
    assert sum(stats.buckets) == stats.count == len(samples)
    assert stats.min == min(samples)
    assert stats.max == max(samples)
    assert stats.total == pytest.approx(math.fsum(samples))


def test_to_dict_carries_quantiles_and_json_safe_buckets():
    stats = TimerStats()
    for value in (0.001, 0.002, 0.004, 0.5, 200.0):
        stats.observe(value)
    document = stats.to_dict()
    for key in ("p50_seconds", "p95_seconds", "p99_seconds", "buckets"):
        assert key in document
    # Must survive json.dumps: the overflow bucket is the string "+Inf".
    encoded = json.loads(json.dumps(document))
    assert ["+Inf", 1] in encoded["buckets"]
    assert document["p50_seconds"] <= document["p95_seconds"]
    assert document["p95_seconds"] <= document["p99_seconds"]


def test_empty_timer_quantiles_are_zero():
    stats = TimerStats()
    assert stats.p50 == 0.0 and stats.p99 == 0.0
    assert stats.quantile(1.0) == 0.0


def test_bucket_bounds_are_log_spaced_and_sorted():
    assert list(BUCKET_BOUNDS) == sorted(BUCKET_BOUNDS)
    assert BUCKET_BOUNDS[0] == pytest.approx(1e-6)
    for previous, following in zip(BUCKET_BOUNDS, BUCKET_BOUNDS[1:]):
        assert following == pytest.approx(previous * 2)
