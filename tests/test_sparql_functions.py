"""Unit tests for SPARQL expression semantics (EBV, compare, builtins)."""

import pytest

from repro.rdf import IRI, BlankNode, Literal, XSD
from repro.sparql import functions as F
from repro.sparql.errors import ExpressionError


def lit(value):
    return Literal.from_python(value)


class TestEbv:
    def test_boolean(self):
        assert F.ebv(lit(True)) is True
        assert F.ebv(lit(False)) is False

    def test_numbers(self):
        assert F.ebv(lit(1)) is True
        assert F.ebv(lit(0)) is False
        assert F.ebv(lit(0.0)) is False

    def test_strings(self):
        assert F.ebv(lit("x")) is True
        assert F.ebv(lit("")) is False
        assert F.ebv(Literal("x", language="en")) is True

    def test_iri_has_no_ebv(self):
        with pytest.raises(ExpressionError):
            F.ebv(IRI("http://x/a"))

    def test_unbound_has_no_ebv(self):
        with pytest.raises(ExpressionError):
            F.ebv(None)


class TestCompare:
    def test_numeric_equality_across_datatypes(self):
        assert F.compare("=", Literal("23", XSD.int), Literal("23", XSD.integer))
        assert F.compare("=", Literal("1.0", XSD.double), Literal("1", XSD.int))

    def test_string_equality(self):
        assert F.compare("=", lit("abc"), lit("abc"))
        assert F.compare("!=", lit("abc"), lit("abd"))

    def test_iri_equality(self):
        assert F.compare("=", IRI("http://x/a"), IRI("http://x/a"))

    def test_iri_not_equal_to_literal(self):
        assert F.compare("!=", IRI("http://x/a"), lit("http://x/a"))

    def test_numeric_ordering(self):
        assert F.compare("<", lit(2), lit(10))
        assert F.compare(">=", lit(2.5), lit(2.5))

    def test_string_ordering(self):
        assert F.compare("<", lit("abc"), lit("abd"))

    def test_mixed_type_ordering_errors(self):
        with pytest.raises(ExpressionError):
            F.compare("<", lit(1), lit("abc"))

    def test_unbound_comparison_errors(self):
        with pytest.raises(ExpressionError):
            F.compare("=", None, lit(1))


class TestArithmetic:
    def test_basic_ops(self):
        assert F.arithmetic("+", lit(2), lit(3)).to_python() == 5
        assert F.arithmetic("-", lit(2), lit(3)).to_python() == -1
        assert F.arithmetic("*", lit(2), lit(3)).to_python() == 6
        assert F.arithmetic("/", lit(7), lit(2)).to_python() == 3.5

    def test_division_by_zero(self):
        with pytest.raises(ExpressionError):
            F.arithmetic("/", lit(1), lit(0))

    def test_non_numeric_errors(self):
        with pytest.raises(ExpressionError):
            F.arithmetic("+", lit("a"), lit(1))

    def test_negate(self):
        assert F.negate(lit(5)).to_python() == -5


class TestBuiltins:
    def test_type_tests(self):
        assert F.call_builtin("ISIRI", [IRI("http://x/a")]) == F.TRUE
        assert F.call_builtin("ISURI", [IRI("http://x/a")]) == F.TRUE
        assert F.call_builtin("ISIRI", [lit("a")]) == F.FALSE
        assert F.call_builtin("ISLITERAL", [lit("a")]) == F.TRUE
        assert F.call_builtin("ISBLANK", [BlankNode("b")]) == F.TRUE
        assert F.call_builtin("ISNUMERIC", [lit(1)]) == F.TRUE
        assert F.call_builtin("ISNUMERIC", [lit("1")]) == F.FALSE

    def test_bound(self):
        assert F.call_builtin("BOUND", [lit(1)]) == F.TRUE
        assert F.call_builtin("BOUND", [None]) == F.FALSE

    def test_str(self):
        assert F.call_builtin("STR", [IRI("http://x/a")]).lexical == "http://x/a"
        assert F.call_builtin("STR", [lit(23)]).lexical == "23"

    def test_lang_and_datatype(self):
        tagged = Literal("x", language="en")
        assert F.call_builtin("LANG", [tagged]).lexical == "en"
        assert F.call_builtin("LANG", [lit("x")]).lexical == ""
        assert F.call_builtin("DATATYPE", [lit(1)]) == XSD.int

    def test_string_functions(self):
        assert F.call_builtin("STRLEN", [lit("abcd")]).to_python() == 4
        assert F.call_builtin("UCASE", [lit("ab")]).lexical == "AB"
        assert F.call_builtin("LCASE", [lit("AB")]).lexical == "ab"
        assert F.call_builtin("STRSTARTS", [lit("#tag"), lit("#")]) == F.TRUE
        assert F.call_builtin("STRENDS", [lit("name"), lit("me")]) == F.TRUE
        assert F.call_builtin("CONTAINS", [lit("webseries"), lit("web")]) == F.TRUE
        assert F.call_builtin(
            "CONCAT", [lit("#"), lit("train")]
        ).lexical == "#train"

    def test_strbefore_strafter(self):
        assert F.call_builtin("STRBEFORE", [lit("a:b"), lit(":")]).lexical == "a"
        assert F.call_builtin("STRAFTER", [lit("a:b"), lit(":")]).lexical == "b"
        assert F.call_builtin("STRAFTER", [lit("ab"), lit(":")]).lexical == ""

    def test_substr_one_based(self):
        assert F.call_builtin("SUBSTR", [lit("hello"), lit(2)]).lexical == "ello"
        assert F.call_builtin(
            "SUBSTR", [lit("hello"), lit(2), lit(3)]
        ).lexical == "ell"

    def test_regex(self):
        assert F.call_builtin("REGEX", [lit("webseries"), lit("^web")]) == F.TRUE
        assert F.call_builtin(
            "REGEX", [lit("WEB"), lit("web"), lit("i")]
        ) == F.TRUE
        with pytest.raises(ExpressionError):
            F.call_builtin("REGEX", [lit("x"), lit("[")])

    def test_replace(self):
        assert F.call_builtin(
            "REPLACE", [lit("aaa"), lit("a"), lit("b")]
        ).lexical == "bbb"

    def test_numeric_functions(self):
        assert F.call_builtin("ABS", [lit(-2)]).to_python() == 2
        assert F.call_builtin("ROUND", [lit(2.5)]).to_python() == 2
        assert F.call_builtin("CEIL", [lit(2.1)]).to_python() == 3
        assert F.call_builtin("FLOOR", [lit(2.9)]).to_python() == 2

    def test_sameterm(self):
        assert F.call_builtin("SAMETERM", [lit(1), lit(1)]) == F.TRUE
        # sameTerm is stricter than '=': different datatypes differ.
        assert F.call_builtin(
            "SAMETERM", [Literal("1", XSD.int), Literal("1", XSD.integer)]
        ) == F.FALSE

    def test_langmatches(self):
        tag = F.call_builtin("LANG", [Literal("x", language="en-US")])
        assert F.call_builtin("LANGMATCHES", [tag, lit("en")]) == F.TRUE
        assert F.call_builtin("LANGMATCHES", [tag, lit("*")]) == F.TRUE
        assert F.call_builtin("LANGMATCHES", [tag, lit("fr")]) == F.FALSE

    def test_strdt_strlang(self):
        typed = F.call_builtin("STRDT", [lit("5"), XSD.int])
        assert typed.to_python() == 5
        tagged = F.call_builtin("STRLANG", [lit("x"), lit("en")])
        assert tagged.language == "en"

    def test_iri_constructor(self):
        assert F.call_builtin("IRI", [lit("http://x/a")]) == IRI("http://x/a")

    def test_unknown_function(self):
        with pytest.raises(ExpressionError):
            F.call_builtin("NOPE", [])

    def test_wrong_arity(self):
        with pytest.raises(ExpressionError):
            F.call_builtin("STRLEN", [lit("a"), lit("b")])


class TestOrderKey:
    def test_type_order(self):
        unbound = F.order_key(None)
        blank = F.order_key(BlankNode("b"))
        iri = F.order_key(IRI("http://x/a"))
        number = F.order_key(lit(5))
        string = F.order_key(lit("a"))
        assert unbound < blank < iri < number < string

    def test_numeric_order(self):
        assert F.order_key(lit(2)) < F.order_key(lit(10))

    def test_sortable_mixed_list(self):
        terms = [lit("b"), None, lit(3), IRI("http://x/a"), lit("a")]
        ordered = sorted(terms, key=F.order_key)
        assert ordered[0] is None
        assert ordered[1] == IRI("http://x/a")
