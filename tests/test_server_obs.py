"""Server-side observability: trace headers, Prometheus, health, logs."""

import json
import logging
import os
import time
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.obs import JsonFormatter, access_logger
from repro.obs import metrics as _obs
from repro.obs import trace
from repro.rdf import Quad
from repro.server import SparqlServer
from repro.sparql import SparqlEngine
from repro.store import open_durable

from .conftest import ex

pytestmark = pytest.mark.obs

QUERY = "SELECT ?n WHERE { ?x <http://ex/name> ?n } ORDER BY ?n"


@pytest.fixture(autouse=True)
def _tracing_off():
    trace.disable()
    yield
    trace.disable()


@pytest.fixture
def traced_server(social_engine):
    with SparqlServer(social_engine, trace=True) as running:
        yield running


@pytest.fixture
def plain_server(social_engine):
    with SparqlServer(social_engine) as running:
        yield running


def get(server, path, headers=None):
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}", headers=headers or {}
    )
    try:
        response = urllib.request.urlopen(request, timeout=10)
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read().decode("utf-8")
    with response:
        return (
            response.status,
            dict(response.headers),
            response.read().decode("utf-8"),
        )


def query_path(query=QUERY):
    return f"/sparql?query={urllib.parse.quote(query)}"


class TestTraceHeader:
    def test_client_trace_id_round_trips(self, traced_server):
        status, headers, _ = get(
            traced_server, query_path(),
            headers={"X-Trace-Id": "client-id-42"},
        )
        assert status == 200
        assert headers["X-Trace-Id"] == "client-id-42"

    def test_server_generates_id_when_tracing(self, traced_server):
        status, headers, _ = get(traced_server, query_path())
        assert status == 200
        assert len(headers["X-Trace-Id"]) == 32

    def test_untraced_server_sends_no_header_unprompted(self, plain_server):
        status, headers, _ = get(plain_server, query_path())
        assert status == 200
        assert "X-Trace-Id" not in headers

    def test_untraced_server_still_echoes_client_id(self, plain_server):
        _, headers, _ = get(
            plain_server, query_path(), headers={"X-Trace-Id": "corr-7"}
        )
        assert headers["X-Trace-Id"] == "corr-7"

    def test_malformed_client_id_is_replaced(self, traced_server):
        _, headers, _ = get(
            traced_server, query_path(),
            headers={"X-Trace-Id": "not a valid id!"},
        )
        assert headers["X-Trace-Id"] != "not a valid id!"


class TestTraceRetrieval:
    def test_trace_endpoint_returns_span_tree(self, traced_server):
        _, headers, _ = get(traced_server, query_path())
        trace_id = headers["X-Trace-Id"]
        status, _, body = get(traced_server, f"/trace/{trace_id}")
        assert status == 200
        document = json.loads(body)
        assert document["trace_id"] == trace_id
        names = [span["name"] for span in document["spans"]]
        # The request is the root; the engine nests its spans under it
        # rather than opening a second trace of its own.
        assert "request" in names
        assert "parse" in names and "execute" in names
        assert "op.IndexScan" in names
        request_span = next(
            span for span in document["spans"] if span["name"] == "request"
        )
        assert request_span["attributes"]["path"] == "/sparql"

    def test_unknown_trace_id_is_404(self, traced_server):
        status, _, body = get(traced_server, "/trace/doesnotexist")
        assert status == 404
        assert "no recent trace" in json.loads(body)["error"]


class TestPrometheusNegotiation:
    def test_accept_text_plain_gets_exposition(self, traced_server):
        _obs.enable()
        try:
            get(traced_server, query_path())
            status, headers, body = get(
                traced_server, "/metrics", headers={"Accept": "text/plain"}
            )
        finally:
            _obs.disable()
        assert status == 200
        assert headers["Content-Type"].startswith(
            "text/plain; version=0.0.4"
        )
        assert "# TYPE repro_query_count_total counter" in body
        assert "repro_query_seconds_bucket{le=" in body
        assert 'le="+Inf"' in body
        assert "repro_query_seconds_count" in body

    def test_default_accept_gets_json(self, traced_server):
        status, headers, body = get(traced_server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        json.loads(body)


class TestHealthz:
    def test_healthy_server(self, plain_server, social_engine):
        status, _, body = get(plain_server, "/healthz")
        assert status == 200
        document = json.loads(body)
        assert document == {
            "status": "ok", "inflight": 1, "wal_failed": False,
            "applied_data_version": social_engine.network.data_version,
        }

    def test_poisoned_wal_turns_503(self, tmp_path):
        store = open_durable(os.path.join(str(tmp_path), "store"))
        store.create_model("m")
        store.insert("m", Quad(ex("a"), ex("p"), ex("b")))
        engine = SparqlEngine(store, default_model="m")
        # Simulate an append failure (ENOSPC / IO error) poisoning the
        # log: every later write must be refused and health must go red.
        store._wal._mark_failed()
        with SparqlServer(engine) as server:
            status, _, body = get(server, "/healthz")
        assert status == 503
        document = json.loads(body)
        assert document["status"] == "failed"
        assert document["wal_failed"] is True
        store.close()


class _CapturingHandler(logging.Handler):
    def __init__(self):
        super().__init__()
        self.records = []

    def emit(self, record):
        self.records.append(record)


@pytest.fixture
def captured_access_log():
    logger = access_logger()
    handler = _CapturingHandler()
    logger.addHandler(handler)
    previous_level = logger.level
    logger.setLevel(logging.INFO)
    try:
        yield handler
    finally:
        logger.removeHandler(handler)
        logger.setLevel(previous_level)


def _wait_for(predicate, timeout=5.0):
    """The access log is emitted after the response bytes go out, so a
    fast client can observe the response before the record exists."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        found = predicate()
        if found:
            return found
        time.sleep(0.01)
    return predicate()


class TestAccessLog:
    def test_one_structured_record_per_request(
        self, traced_server, captured_access_log
    ):
        get(traced_server, query_path(),
            headers={"X-Trace-Id": "log-test-1"})
        records = _wait_for(lambda: [
            r for r in captured_access_log.records
            if getattr(r, "trace_id", None) == "log-test-1"
        ])
        assert len(records) == 1
        record = records[0]
        assert record.method == "GET"
        assert record.path.startswith("/sparql?query=")
        assert record.status == 200
        assert record.duration_ms >= 0
        assert record.bytes > 0
        assert record.client == "127.0.0.1"

    def test_record_formats_as_json_line(
        self, traced_server, captured_access_log
    ):
        get(traced_server, "/healthz")
        records = _wait_for(lambda: [
            r for r in captured_access_log.records
            if getattr(r, "path", None) == "/healthz"
        ])
        record = records[-1]
        document = json.loads(JsonFormatter().format(record))
        assert document["logger"] == "repro.server.access"
        assert document["level"] == "INFO"
        assert document["method"] == "GET"
        assert document["path"] == "/healthz"
        assert document["status"] == 200
        assert document["ts"].endswith("Z")

    def test_silent_by_default(self, plain_server):
        # The access logger ships with a NullHandler only; INFO is not
        # enabled, so requests cost no formatting work.
        assert not access_logger().isEnabledFor(logging.INFO)
        status, _, _ = get(plain_server, query_path())
        assert status == 200
