"""Unit tests for the values table."""

import pytest

from repro.rdf import IRI, BlankNode, Literal, XSD
from repro.store import DEFAULT_GRAPH_ID, ValuesTable


class TestValuesTable:
    def test_ids_start_after_default_graph(self):
        table = ValuesTable()
        first = table.get_or_add(IRI("http://x/a"))
        assert first == 1
        assert DEFAULT_GRAPH_ID == 0

    def test_get_or_add_idempotent(self):
        table = ValuesTable()
        a1 = table.get_or_add(IRI("http://x/a"))
        a2 = table.get_or_add(IRI("http://x/a"))
        assert a1 == a2
        assert len(table) == 1

    def test_distinct_terms_get_distinct_ids(self):
        table = ValuesTable()
        ids = {
            table.get_or_add(IRI("http://x/a")),
            table.get_or_add(Literal("http://x/a")),
            table.get_or_add(BlankNode("a")),
        }
        assert len(ids) == 3

    def test_decode(self):
        table = ValuesTable()
        term = Literal("23", XSD.int)
        term_id = table.get_or_add(term)
        assert table.term(term_id) == term

    def test_canonicalized_literals_share_an_id(self):
        table = ValuesTable()
        id1 = table.get_or_add(Literal("023", XSD.int))
        id2 = table.get_or_add(Literal("23", XSD.int))
        assert id1 == id2

    def test_lookup_missing_returns_none(self):
        assert ValuesTable().lookup(IRI("http://x/missing")) is None

    def test_term_rejects_default_graph_and_unknown(self):
        table = ValuesTable()
        with pytest.raises(KeyError):
            table.term(0)
        with pytest.raises(KeyError):
            table.term(99)

    def test_term_or_none_maps_default_graph(self):
        table = ValuesTable()
        assert table.term_or_none(DEFAULT_GRAPH_ID) is None

    def test_type_tests_by_id(self):
        table = ValuesTable()
        iri_id = table.get_or_add(IRI("http://x/a"))
        lit_id = table.get_or_add(Literal("a"))
        blank_id = table.get_or_add(BlankNode("a"))
        assert table.is_iri_id(iri_id) and not table.is_literal_id(iri_id)
        assert table.is_literal_id(lit_id) and not table.is_iri_id(lit_id)
        assert table.is_blank_id(blank_id)
        assert not table.is_iri_id(DEFAULT_GRAPH_ID)

    def test_ids_for(self):
        table = ValuesTable()
        terms = [IRI("http://x/a"), IRI("http://x/b"), IRI("http://x/a")]
        ids = table.ids_for(terms)
        assert ids[0] == ids[2] != ids[1]

    def test_storage_bytes_grows_with_content(self):
        table = ValuesTable()
        empty = table.storage_bytes()
        table.get_or_add(IRI("http://example.org/some/long/iri"))
        assert table.storage_bytes() > empty
