"""Unparser tests: parse -> unparse -> parse is a fixpoint."""

import pytest

from repro.sparql.parser import Parser
from repro.sparql.unparse import unparse

P = Parser(prefixes={"ex": "http://ex/", "r": "http://pg/r/",
                     "k": "http://pg/k/"})

#: Queries covering every construct the unparser handles.
QUERIES = [
    "SELECT ?x WHERE { ?x ex:p ?y }",
    "SELECT * WHERE { ?x ?p ?y }",
    "SELECT DISTINCT ?x WHERE { ?x ex:p ?y . ?y ex:q ?z }",
    "SELECT REDUCED ?x WHERE { ?x ex:p ?y }",
    'SELECT ?x WHERE { ?x ex:name "Amy" . ?x ex:age 23 }',
    "SELECT ?x WHERE { ?x ex:p ?y FILTER (?y > 5 && ?y < 10) }",
    "SELECT ?x WHERE { ?x ex:p ?y FILTER isLiteral(?y) }",
    'SELECT ?x WHERE { ?x ex:p ?y FILTER (?y IN ("a", "b")) }',
    'SELECT ?x WHERE { ?x ex:p ?y FILTER (?y NOT IN ("a")) }',
    "SELECT ?x WHERE { ?x ex:p ?y OPTIONAL { ?y ex:q ?z } }",
    "SELECT ?x WHERE { { ?x ex:p ?y } UNION { ?x ex:q ?y } }",
    "SELECT ?x WHERE { ?x ex:p ?y MINUS { ?x ex:q ?y } }",
    "SELECT ?x WHERE { GRAPH ?g { ?x ex:p ?y } }",
    "SELECT ?x WHERE { GRAPH ex:g1 { ?x ex:p ?y } }",
    "SELECT ?z WHERE { ?x ex:p ?y BIND(?y + 1 AS ?z) }",
    "SELECT ?x WHERE { VALUES (?x) { (ex:a) (UNDEF) } ?x ex:p ?y }",
    "SELECT ?x WHERE { ?x ex:p/ex:q ?y }",
    "SELECT ?x WHERE { ?x (ex:p|ex:q) ?y }",
    "SELECT ?x WHERE { ?x ^ex:p ?y }",
    "SELECT ?x WHERE { ?x ex:p* ?y }",
    "SELECT ?x WHERE { ?x ex:p+ ?y }",
    "SELECT ?x WHERE { ?x ex:p? ?y }",
    "SELECT ?x WHERE { ?x (ex:p/ex:q)+ ?y }",
    "SELECT (COUNT(*) AS ?c) WHERE { ?x ex:p ?y }",
    "SELECT (COUNT(DISTINCT ?y) AS ?c) WHERE { ?x ex:p ?y }",
    "SELECT ?x (SUM(?v) AS ?s) WHERE { ?x ex:p ?v } GROUP BY ?x",
    "SELECT ?x (AVG(?v) AS ?a) WHERE { ?x ex:p ?v } GROUP BY ?x "
    "HAVING (AVG(?v) > 2)",
    "SELECT ?x WHERE { ?x ex:p ?v } ORDER BY DESC(?v) ?x LIMIT 5 OFFSET 2",
    "SELECT ?x WHERE { { SELECT ?x WHERE { ?x ex:p ?y } LIMIT 2 } }",
    "SELECT ?x WHERE { ?x ex:p ?y FILTER EXISTS { ?x ex:q ?z } }",
    "SELECT ?x WHERE { ?x ex:p ?y FILTER NOT EXISTS { ?x ex:q ?z } }",
    'SELECT (GROUP_CONCAT(?v; SEPARATOR=",") AS ?s) WHERE { ?x ex:p ?v }',
    "ASK { ?x ex:p ?y }",
    "CONSTRUCT { ?y ex:q ?x } WHERE { ?x ex:p ?y }",
    "DESCRIBE ex:a",
    'DESCRIBE ?x WHERE { ?x ex:name "Amy" }',
]


@pytest.mark.parametrize("query", QUERIES)
def test_parse_unparse_fixpoint(query):
    first = P.parse_query(query)
    text = unparse(first)
    second = P.parse_query(text)
    assert first == second, text


def test_unparsed_text_is_executable(social_engine):
    original = (
        "SELECT ?n WHERE { ?x ex:knows ex:carol . ?x ex:name ?n } ORDER BY ?n"
    )
    ast = social_engine.prepare(original).ast
    rendered = unparse(ast)
    assert [r["n"].lexical for r in social_engine.select(rendered)] == [
        "Alice", "Bob",
    ]
