"""Tests for the LUBM-style generator and the paper's skew contrast."""

import pytest

from repro.core import MODEL_SP, measure_rdf, transformer_for
from repro.datasets.lubm import OBJECT_PROPERTIES, UB, generate_lubm
from repro.datasets.twitter import TwitterConfig, generate_twitter
from repro.rdf import RDF


class TestGenerator:
    def test_deterministic(self):
        assert generate_lubm(seed=1) == generate_lubm(seed=1)

    def test_structure(self):
        quads = generate_lubm(universities=1, departments_per_university=2)
        types = {q.object for q in quads if q.predicate == RDF.type}
        assert UB.University in types
        assert UB.Department in types
        assert UB.GraduateStudent in types

    def test_every_student_has_advisor(self):
        quads = generate_lubm()
        students = {
            q.subject for q in quads
            if q.predicate == RDF.type and q.object == UB.GraduateStudent
        }
        advised = {q.subject for q in quads if q.predicate == UB.advisor}
        assert students == advised

    def test_fixed_object_property_vocabulary(self):
        quads = generate_lubm()
        object_properties = {
            q.predicate
            for q in quads
            if not q.object.is_literal() and q.predicate != RDF.type
        }
        allowed = {UB.term(name) for name in OBJECT_PROPERTIES}
        assert object_properties <= allowed


class TestSkewContrast:
    """The Table 2 discussion: SP's predicate count grows with E, while
    LUBM-shaped data uses a handful of properties for all its triples."""

    def test_sp_predicates_dwarf_lubm_predicates(self):
        lubm = measure_rdf(generate_lubm())
        graph = generate_twitter(TwitterConfig(egos=6, seed=3))
        sp = measure_rdf(
            list(transformer_for(MODEL_SP).transform(graph))
        )
        # LUBM: a handful of object properties regardless of size.
        assert lubm.distinct_object_properties <= len(OBJECT_PROPERTIES) + 1
        # SP: one property per edge (plus labels and subPropertyOf).
        assert sp.distinct_object_properties > graph.edge_count

    def test_triples_per_property_ratio(self):
        """LUBM: many triples per property.  SP: fewer than 3 per
        property (the paper: "the proportion ... is less than 3")."""
        lubm = measure_rdf(generate_lubm())
        lubm_ratio = (
            lubm.object_property_quads / lubm.distinct_object_properties
        )
        graph = generate_twitter(TwitterConfig(egos=6, seed=3))
        sp = measure_rdf(list(transformer_for(MODEL_SP).transform(graph)))
        sp_ratio = sp.object_property_quads / sp.distinct_object_properties
        assert lubm_ratio > 10
        assert sp_ratio < 3
