"""Evaluator edge cases: corners of the SPARQL semantics."""

import pytest

from repro.rdf import IRI, Literal, Quad, XSD
from repro.sparql import SparqlEngine
from repro.sparql.errors import ParseError
from repro.store import SemanticNetwork

EX = "http://ex/"


def ex(name):
    return IRI(EX + name)


@pytest.fixture
def engine():
    net = SemanticNetwork()
    net.create_model("m")
    net.bulk_load(
        "m",
        [
            Quad(ex("a"), ex("p"), ex("b")),
            Quad(ex("b"), ex("p"), ex("c")),
            Quad(ex("a"), ex("score"), Literal.from_python(1)),
            Quad(ex("b"), ex("score"), Literal.from_python(2)),
            Quad(ex("c"), ex("score"), Literal.from_python(2)),
            Quad(ex("a"), ex("label"), Literal("alpha")),
            Quad(ex("b"), ex("label"), Literal("beta", language="en")),
        ],
    )
    return SparqlEngine(net, prefixes={"ex": EX}, default_model="m")


class TestProjectionCorners:
    def test_select_var_never_bound(self, engine):
        result = engine.select("SELECT ?ghost WHERE { ?x ex:p ?y }")
        assert len(result) == 2
        assert all(row["ghost"] is None for row in result)

    def test_select_expression_alias(self, engine):
        result = engine.select(
            "SELECT (?s * 10 AS ?scaled) WHERE { ex:a ex:score ?s }"
        )
        assert result.scalar().to_python() == 10

    def test_select_expression_rebinding_rejected(self, engine):
        from repro.sparql.errors import EvaluationError

        with pytest.raises(EvaluationError):
            engine.select("SELECT (1 + 1 AS ?s) WHERE { ex:a ex:score ?s }")

    def test_reduced_deduplicates(self, engine):
        result = engine.select(
            "SELECT REDUCED ?v WHERE { ?x ex:score ?v }"
        )
        assert len(result) == 2  # 1 and 2

    def test_limit_zero(self, engine):
        result = engine.select("SELECT ?x WHERE { ?x ex:p ?y } LIMIT 0")
        assert len(result) == 0

    def test_offset_beyond_end(self, engine):
        result = engine.select("SELECT ?x WHERE { ?x ex:p ?y } OFFSET 99")
        assert len(result) == 0


class TestOptionalCorners:
    def test_nested_optional(self, engine):
        result = engine.select(
            "SELECT ?x ?s ?l WHERE { ?x ex:p ?y "
            "OPTIONAL { ?x ex:score ?s OPTIONAL { ?x ex:label ?l } } }"
        )
        rows = {row["x"].value: (row["s"], row["l"]) for row in result}
        assert rows[EX + "a"][0].to_python() == 1
        assert rows[EX + "a"][1].lexical == "alpha"

    def test_optional_filter_inside(self, engine):
        result = engine.select(
            "SELECT ?x ?s WHERE { ?x ex:p ?y "
            "OPTIONAL { ?x ex:score ?s FILTER (?s > 1) } }"
        )
        rows = {row["x"].value: row["s"] for row in result}
        assert rows[EX + "a"] is None  # score 1 filtered inside optional
        assert rows[EX + "b"].to_python() == 2

    def test_optional_then_join_on_optional_var(self, engine):
        # A later pattern can fill a variable the OPTIONAL left unbound.
        result = engine.select(
            "SELECT ?x ?v WHERE { ?x ex:p ?y "
            "OPTIONAL { ?x ex:missing ?v } ?z ex:label ?v }"
        )
        # ?v unbound from optional joins compatibly with label values.
        assert len(result) == 4  # 2 rows x 2 labels


class TestExpressionCorners:
    def test_if_function(self, engine):
        result = engine.select(
            'SELECT (IF(?s > 1, "big", "small") AS ?size) '
            "WHERE { ex:a ex:score ?s }"
        )
        assert result.scalar().lexical == "small"

    def test_coalesce(self, engine):
        result = engine.select(
            "SELECT (COALESCE(?missing, ?s, 0) AS ?v) "
            "WHERE { ex:a ex:score ?s }"
        )
        assert result.scalar().to_python() == 1

    def test_lang_filter(self, engine):
        result = engine.select(
            'SELECT ?v WHERE { ?x ex:label ?v FILTER (LANG(?v) = "en") }'
        )
        assert len(result) == 1
        assert result.rows[0][0].lexical == "beta"

    def test_datatype_function(self, engine):
        result = engine.select(
            "SELECT (DATATYPE(?s) AS ?dt) WHERE { ex:a ex:score ?s }"
        )
        assert result.scalar() == XSD.int

    def test_arithmetic_precedence(self, engine):
        result = engine.select(
            "SELECT (1 + 2 * 3 AS ?v) WHERE { ex:a ex:score ?s }"
        )
        assert result.scalar().to_python() == 7

    def test_unary_minus(self, engine):
        result = engine.select(
            "SELECT (-?s AS ?v) WHERE { ex:a ex:score ?s }"
        )
        assert result.scalar().to_python() == -1

    def test_str_concat_round_trip(self, engine):
        result = engine.select(
            'SELECT ?x WHERE { ?x ex:label ?l '
            'FILTER (STR(?l) = CONCAT("al", "pha")) }'
        )
        assert result.rows == [(ex("a"),)]

    def test_numeric_equality_across_datatypes_not_substituted(self, engine):
        # "2"^^xsd:decimal equals 2^^xsd:int by value; the sargable
        # rewrite must not break this (decimals are not substituted).
        result = engine.select(
            'SELECT ?x WHERE { ?x ex:score ?s FILTER (?s = 2.0) }'
        )
        assert len(result) == 2


class TestOrderCorners:
    def test_multiple_sort_keys(self, engine):
        result = engine.select(
            "SELECT ?x ?s WHERE { ?x ex:score ?s } ORDER BY DESC(?s) ?x"
        )
        ordered = [(row["s"].to_python(), row["x"].value) for row in result]
        assert ordered == [(2, EX + "b"), (2, EX + "c"), (1, EX + "a")]

    def test_order_by_expression(self, engine):
        result = engine.select(
            "SELECT ?x WHERE { ?x ex:score ?s } ORDER BY (0 - ?s) ?x"
        )
        assert result.rows[0][0] in (ex("b"), ex("c"))

    def test_unbound_sorts_first(self, engine):
        result = engine.select(
            "SELECT ?x ?l WHERE { ?x ex:score ?s "
            "OPTIONAL { ?x ex:label ?l } } ORDER BY ?l"
        )
        assert result.rows[0][1] is None  # ex:c has no label


class TestConstructCorners:
    def test_construct_skips_invalid_triples(self, engine):
        # ?v is a literal; literals cannot be subjects -> skipped.
        triples = engine.construct(
            "CONSTRUCT { ?v ex:q ?x } WHERE { ?x ex:label ?v }"
        )
        assert triples == []

    def test_construct_with_constant_terms(self, engine):
        triples = engine.construct(
            "CONSTRUCT { ?x a ex:Thing } WHERE { ?x ex:p ?y }"
        )
        assert len(triples) == 2
        assert all(t.object == ex("Thing") for t in triples)

    def test_construct_deduplicates(self, engine):
        triples = engine.construct(
            "CONSTRUCT { ex:one ex:flag true } WHERE { ?x ex:p ?y }"
        )
        assert len(triples) == 1


class TestParseErrors:
    @pytest.mark.parametrize("bad", [
        "SELECT WHERE { ?x ?p ?y }",
        "SELECT ?x { ?x ?p }",
        "SELECT ?x WHERE { ?x ?p ?y",
        "SELECT ?x WHERE { ?x ?p ?y } GROUP BY",
        "SELECT ?x WHERE { ?x ?p ?y } ORDER BY",
        "ASK",
        "SELECT ?x WHERE { FILTER }",
        "SELECT ?x WHERE { BIND(1) }",
    ])
    def test_malformed_queries_raise(self, engine, bad):
        with pytest.raises(ParseError):
            engine.select(bad)

    def test_error_has_position(self, engine):
        with pytest.raises(ParseError) as err:
            engine.select("SELECT ?x WHERE { ?x ?p }")
        assert "line" in str(err.value)


class TestStrictSemanticsCorners:
    def test_strict_graph_and_default_disjoint(self):
        net = SemanticNetwork()
        net.create_model("m")
        net.bulk_load("m", [
            Quad(ex("a"), ex("p"), ex("b")),
            Quad(ex("a"), ex("p"), ex("c"), ex("g")),
        ])
        strict = SparqlEngine(net, prefixes={"ex": EX}, default_model="m",
                              default_graph_semantics="strict")
        default_only = strict.select("SELECT ?o WHERE { ex:a ex:p ?o }")
        assert [t.value for t in default_only.column("o")] == [EX + "b"]
        named_only = strict.select(
            "SELECT ?o WHERE { GRAPH ?g { ex:a ex:p ?o } }"
        )
        assert [t.value for t in named_only.column("o")] == [EX + "c"]


class TestParserRobustness:
    """Fuzz: the parser either succeeds or raises ParseError — never
    crashes with an unrelated exception."""

    from hypothesis import given, settings, strategies as st

    @settings(max_examples=300, deadline=None)
    @given(text=st.text(max_size=80))
    def test_random_text_never_crashes(self, text):
        from repro.sparql.parser import Parser

        try:
            Parser().parse_query(text)
        except ParseError:
            pass

    @settings(max_examples=200, deadline=None)
    @given(garbage=st.text(
        alphabet="?{}()<>\"'.;,|/^*+!=&@#abc123 \n", max_size=60,
    ))
    def test_random_punctuation_never_crashes(self, garbage):
        from repro.sparql.parser import Parser

        try:
            Parser().parse_query("SELECT ?x WHERE { " + garbage)
        except ParseError:
            pass

    @settings(max_examples=200, deadline=None)
    @given(text=st.text(max_size=60))
    def test_update_parser_never_crashes(self, text):
        from repro.sparql.parser import Parser

        try:
            Parser().parse_update(text)
        except ParseError:
            pass
