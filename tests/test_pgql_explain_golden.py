"""Golden EXPLAIN snapshots for the PGQL experiment suite.

Mirrors ``test_explain_golden.py`` for the PGQL front-end: the full
logical/optimized/physical EXPLAIN output of every compiled PGQL EQ
query (NG encoding) is pinned under ``tests/golden/explain/pgql_*.txt``.
Any compiler or optimizer change that alters a plan shows up as a
readable diff.  Regenerate intentionally with::

    UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_pgql_explain_golden.py -q

The snapshots double as proof that the shared optimizer applies to
compiled PGQL plans with zero new execution code: the ``id(n) =``
equality seeds an IndexScan (filter pushdown), and ORDER BY + LIMIT
fuses into a top-k sort.
"""

import os
import pathlib

import pytest

from repro.core import PropertyGraphRdfStore
from repro.datasets.twitter import (
    TwitterConfig,
    connected_tag,
    generate_twitter,
    hub_vertex,
)
from repro.pgql import pgql_experiment_queries

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden" / "explain"


@pytest.fixture(scope="module")
def ng_setup():
    graph = generate_twitter(TwitterConfig(egos=5, seed=13))
    store = PropertyGraphRdfStore(model="NG")
    store.load(graph)
    # Pin the batch size so snapshots are stable regardless of the
    # REPRO_BATCH_SIZE CI leg the suite happens to run under.
    store.engine.batch_size = 1024
    tag = connected_tag(graph)
    hub = hub_vertex(graph)
    suite = pgql_experiment_queries(tag, hub)
    # A top-k variant: EQ9's degree histogram truncated to 3 rows must
    # compile to a fused top-k sort, same as its SPARQL counterpart.
    suite["EQ9_topk"] = suite["EQ9"] + " LIMIT 3"
    return store, suite


class TestGoldenPgqlExplainSnapshots:
    def test_every_pgql_query_matches_its_snapshot(self, ng_setup):
        store, suite = ng_setup
        update = bool(os.environ.get("UPDATE_GOLDEN"))
        mismatches = []
        for name, query in sorted(suite.items()):
            text = "\n".join(store.engine.explain_pgql_plan(query)) + "\n"
            path = GOLDEN_DIR / f"pgql_{name}.txt"
            if update:
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(text)
                continue
            if not path.exists():
                mismatches.append(f"{name}: missing golden file {path}")
                continue
            expected = path.read_text()
            if text != expected:
                mismatches.append(
                    f"{name}: EXPLAIN output changed; rerun with "
                    f"UPDATE_GOLDEN=1 if intended.\n--- golden\n{expected}"
                    f"\n--- actual\n{text}"
                )
        assert not mismatches, "\n\n".join(mismatches)

    def test_snapshot_coverage(self, ng_setup):
        _, suite = ng_setup
        assert len(suite) == 17  # 16 EQ queries + the top-k variant

    def test_snapshots_label_the_language(self, ng_setup):
        store, suite = ng_setup
        text = "\n".join(store.engine.explain_pgql_plan(suite["EQ1"]))
        assert "Query language: pgql" in text

    def test_id_equality_compiles_to_a_seeded_scan(self, ng_setup):
        """``WHERE id(n) = <v>`` must reach the optimizer as a sargable
        term — the snapshot shows the constant seeded into the scan
        rather than a post-hoc filter."""
        store, suite = ng_setup
        text = "\n".join(store.engine.explain_pgql_plan(suite["EQ11a"]))
        assert "Seed(?n = " in text
        physical = text.split("Physical plan", 1)[-1]
        assert "Filter(" not in physical

    def test_order_by_limit_fuses_into_topk(self, ng_setup):
        store, suite = ng_setup
        text = "\n".join(store.engine.explain_pgql_plan(suite["EQ9_topk"]))
        assert "top=" in text
        unbounded = "\n".join(store.engine.explain_pgql_plan(suite["EQ9"]))
        assert "top=" not in unbounded
