"""Evaluator tests: property paths."""

import pytest

from repro.rdf import IRI, Quad
from repro.store import SemanticNetwork
from repro.sparql import SparqlEngine

EX = "http://ex/"


def ex(name):
    return IRI(EX + name)


@pytest.fixture
def chain_engine():
    """n1 -p-> n2 -p-> n3 -p-> n4, n2 -p-> n4 (diamond), n4 -q-> n1."""
    net = SemanticNetwork()
    net.create_model("m")
    net.bulk_load(
        "m",
        [
            Quad(ex("n1"), ex("p"), ex("n2")),
            Quad(ex("n2"), ex("p"), ex("n3")),
            Quad(ex("n3"), ex("p"), ex("n4")),
            Quad(ex("n2"), ex("p"), ex("n4")),
            Quad(ex("n4"), ex("q"), ex("n1")),
        ],
    )
    return SparqlEngine(net, prefixes={"ex": EX}, default_model="m")


def count(engine, query):
    return engine.select(query).scalar().to_python()


class TestSequencePaths:
    def test_two_hop(self, chain_engine):
        result = chain_engine.select(
            "SELECT ?y WHERE { ex:n1 ex:p/ex:p ?y }"
        )
        assert sorted(t.value for t in result.column("y")) == [
            EX + "n3", EX + "n4",
        ]

    def test_three_hop_multiplicity(self, chain_engine):
        # Paths n1->n2->n3->n4 and n1->n2->n4->(none): only one 3-hop path
        # to n4 via n3; plus n1->n2->n4 is 2-hop.  COUNT counts paths.
        assert count(
            chain_engine,
            "SELECT (COUNT(?y) AS ?c) WHERE { ex:n1 ex:p/ex:p/ex:p ?y }",
        ) == 1

    def test_path_counts_are_per_path_not_per_node(self, chain_engine):
        # Two 2-hop paths end at distinct nodes; with a diamond shape
        # n1->n2->{n3,n4} there are exactly 2 paths.
        assert count(
            chain_engine,
            "SELECT (COUNT(?y) AS ?c) WHERE { ex:n1 ex:p/ex:p ?y }",
        ) == 2

    def test_bound_object_direction(self, chain_engine):
        result = chain_engine.select(
            "SELECT ?x WHERE { ?x ex:p/ex:p ex:n4 }"
        )
        assert sorted(t.value for t in result.column("x")) == [
            EX + "n1", EX + "n2",
        ]

    def test_both_ends_bound(self, chain_engine):
        assert chain_engine.ask("ASK { ex:n1 ex:p/ex:p ex:n4 }")
        assert not chain_engine.ask("ASK { ex:n1 ex:p/ex:p ex:n2 }")

    def test_mixed_predicate_sequence(self, chain_engine):
        result = chain_engine.select(
            "SELECT ?y WHERE { ex:n3 ex:p/ex:q ?y }"
        )
        assert [t.value for t in result.column("y")] == [EX + "n1"]


class TestAlternativeAndInverse:
    def test_alternative_all_pairs(self, chain_engine):
        assert count(
            chain_engine,
            "SELECT (COUNT(*) AS ?c) WHERE { ?x (ex:p|ex:q) ?y }",
        ) == 5

    def test_inverse(self, chain_engine):
        result = chain_engine.select("SELECT ?x WHERE { ex:n2 ^ex:p ?x }")
        assert [t.value for t in result.column("x")] == [EX + "n1"]

    def test_inverse_in_sequence(self, chain_engine):
        # n3 <- n2 -> n4: sibling query.
        result = chain_engine.select(
            "SELECT ?sib WHERE { ex:n3 ^ex:p/ex:p ?sib }"
        )
        assert sorted(t.value for t in result.column("sib")) == [
            EX + "n3", EX + "n4",
        ]


class TestRepetition:
    def test_star_includes_start(self, chain_engine):
        result = chain_engine.select("SELECT ?y WHERE { ex:n1 ex:p* ?y }")
        nodes = sorted(t.value for t in result.column("y"))
        assert nodes == [EX + "n1", EX + "n2", EX + "n3", EX + "n4"]

    def test_plus_excludes_start_without_cycle(self, chain_engine):
        result = chain_engine.select("SELECT ?y WHERE { ex:n1 ex:p+ ?y }")
        nodes = sorted(t.value for t in result.column("y"))
        assert nodes == [EX + "n2", EX + "n3", EX + "n4"]

    def test_plus_includes_start_on_cycle(self, chain_engine):
        # (p|q)+ from n1 cycles back to n1 via n4 -q-> n1.
        result = chain_engine.select(
            "SELECT ?y WHERE { ex:n1 (ex:p|ex:q)+ ?y }"
        )
        nodes = sorted(t.value for t in result.column("y"))
        assert EX + "n1" in nodes

    def test_question_mark(self, chain_engine):
        result = chain_engine.select("SELECT ?y WHERE { ex:n1 ex:p? ?y }")
        nodes = sorted(t.value for t in result.column("y"))
        assert nodes == [EX + "n1", EX + "n2"]

    def test_star_set_semantics_no_duplicates(self, chain_engine):
        result = chain_engine.select("SELECT ?y WHERE { ex:n1 ex:p* ?y }")
        nodes = [t.value for t in result.column("y")]
        assert len(nodes) == len(set(nodes))

    def test_star_all_pairs(self, chain_engine):
        result = chain_engine.select(
            "SELECT ?x ?y WHERE { ?x ex:q* ?y }"
        )
        # Every node in the q-graph relates to itself, plus n4->n1.
        pairs = {(r["x"].value, r["y"].value) for r in result}
        assert (EX + "n4", EX + "n1") in pairs
        assert (EX + "n4", EX + "n4") in pairs


class TestPathsJoinedWithPatterns:
    def test_path_after_bgp(self, chain_engine):
        result = chain_engine.select(
            "SELECT ?z WHERE { ex:n1 ex:p ?y . ?y ex:p/ex:p ?z }"
        )
        assert [t.value for t in result.column("z")] == [EX + "n4"]

    def test_path_inside_graph_var_unsupported(self, chain_engine):
        from repro.sparql.errors import EvaluationError

        with pytest.raises(EvaluationError):
            chain_engine.select(
                "SELECT ?y WHERE { GRAPH ?g { ex:n1 ex:p/ex:p ?y } }"
            )

    def test_path_with_unknown_predicate(self, chain_engine):
        result = chain_engine.select(
            "SELECT ?y WHERE { ex:n1 ex:nope/ex:p ?y }"
        )
        assert len(result) == 0


class TestFivehopCounting:
    def test_path_explosion_counted_without_materialization(self):
        """A dense two-level fan (10 x 10) has 100 two-hop paths."""
        net = SemanticNetwork()
        net.create_model("m")
        quads = []
        for i in range(10):
            quads.append(Quad(ex("root"), ex("p"), ex(f"mid{i}")))
            for j in range(10):
                quads.append(Quad(ex(f"mid{i}"), ex("p"), ex(f"leaf{j}")))
        net.bulk_load("m", quads)
        engine = SparqlEngine(net, prefixes={"ex": EX}, default_model="m")
        assert count(
            engine,
            "SELECT (COUNT(?y) AS ?c) WHERE { ex:root ex:p/ex:p ?y }",
        ) == 100


class TestNegatedPropertySets:
    def test_single_negated_iri(self, chain_engine):
        result = chain_engine.select("SELECT ?y WHERE { ex:n4 !ex:p ?y }")
        assert [t.value for t in result.column("y")] == [EX + "n1"]

    def test_negated_set(self, chain_engine):
        result = chain_engine.select(
            "SELECT ?y WHERE { ex:n4 !(ex:p|ex:q) ?y }"
        )
        assert len(result) == 0

    def test_negated_all_pairs(self, chain_engine):
        result = chain_engine.select(
            "SELECT ?x ?y WHERE { ?x !ex:q ?y }"
        )
        assert len(result) == 4  # the four ex:p edges

    def test_negated_bound_object(self, chain_engine):
        result = chain_engine.select("SELECT ?x WHERE { ?x !ex:q ex:n4 }")
        assert sorted(t.value for t in result.column("x")) == [
            EX + "n2", EX + "n3",
        ]

    def test_negated_in_sequence(self, chain_engine):
        result = chain_engine.select(
            "SELECT ?y WHERE { ex:n3 ex:p/!ex:p ?y }"
        )
        assert [t.value for t in result.column("y")] == [EX + "n1"]

    def test_negated_unknown_iri_excludes_nothing(self, chain_engine):
        result = chain_engine.select(
            "SELECT ?y WHERE { ex:n1 !ex:nonexistent ?y }"
        )
        assert len(result) == 1  # the p edge from n1

    def test_inverse_member_rejected(self, chain_engine):
        from repro.sparql.errors import ParseError

        with pytest.raises(ParseError):
            chain_engine.select("SELECT ?y WHERE { ex:n1 !(^ex:p) ?y }")

    def test_unparse_roundtrip(self):
        from repro.sparql.parser import Parser
        from repro.sparql.unparse import unparse

        parser = Parser(prefixes={"ex": EX})
        first = parser.parse_query("SELECT ?y WHERE { ex:n1 !(ex:p|ex:q) ?y }")
        assert parser.parse_query(unparse(first)) == first
