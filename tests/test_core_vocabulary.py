"""Unit tests for the PG vocabulary (Section 2.2 IRI generation)."""

import pytest

from repro.core import PgVocabulary
from repro.rdf import IRI, Literal, XSD


class TestForwardMapping:
    def test_paper_examples(self):
        vocab = PgVocabulary()
        assert vocab.vertex_iri(1) == IRI("http://pg/v1")
        assert vocab.edge_iri(3) == IRI("http://pg/e3")
        assert vocab.label_iri("follows") == IRI("http://pg/r/follows")
        assert vocab.key_iri("age") == IRI("http://pg/k/age")

    def test_value_literal_types(self):
        vocab = PgVocabulary()
        assert vocab.value_literal(23) == Literal("23", XSD.int)
        assert vocab.value_literal(2.5) == Literal("2.5", XSD.double)
        assert vocab.value_literal(True) == Literal("true", XSD.boolean)
        assert vocab.value_literal("MIT") == Literal("MIT")

    def test_custom_vertex_prefix(self):
        vocab = PgVocabulary(vertex_prefix="n")
        assert vocab.vertex_iri(6160742) == IRI("http://pg/n6160742")

    def test_prefixes_must_differ(self):
        with pytest.raises(ValueError):
            PgVocabulary(vertex_prefix="x", edge_prefix="x")

    def test_base_gets_trailing_slash(self):
        vocab = PgVocabulary(base="http://example.org/pg")
        assert vocab.vertex_iri(1).value == "http://example.org/pg/v1"

    def test_special_characters_in_keys_encoded(self):
        vocab = PgVocabulary()
        iri = vocab.key_iri("has tag")
        assert " " not in iri.value
        assert vocab.parse_key(iri) == "has tag"

    def test_hash_tags_encoded(self):
        vocab = PgVocabulary()
        iri = vocab.label_iri("#webseries")
        assert vocab.parse_label(iri) == "#webseries"


class TestReverseMapping:
    def test_parse_vertex_and_edge(self):
        vocab = PgVocabulary()
        assert vocab.parse_vertex_id(IRI("http://pg/v42")) == 42
        assert vocab.parse_edge_id(IRI("http://pg/e7")) == 7

    def test_parse_rejects_wrong_namespace(self):
        vocab = PgVocabulary()
        assert vocab.parse_vertex_id(IRI("http://other/v42")) is None
        assert vocab.parse_label(IRI("http://pg/k/age")) is None
        assert vocab.parse_key(IRI("http://pg/r/follows")) is None

    def test_parse_rejects_non_numeric_suffix(self):
        vocab = PgVocabulary()
        assert vocab.parse_vertex_id(IRI("http://pg/vabc")) is None

    def test_vertex_edge_namespaces_disjoint(self):
        vocab = PgVocabulary()
        assert vocab.parse_vertex_id(vocab.edge_iri(3)) is None
        assert vocab.parse_edge_id(vocab.vertex_iri(3)) is None

    def test_parse_value(self):
        vocab = PgVocabulary()
        assert vocab.parse_value(vocab.value_literal(23)) == 23
        assert vocab.parse_value(vocab.value_literal("x")) == "x"
        assert vocab.parse_value(vocab.value_literal(False)) is False

    def test_prefix_map(self):
        prefixes = PgVocabulary().prefixes()
        assert prefixes["r"] == "http://pg/r/"
        assert prefixes["key"] == "http://pg/k/"
