"""Independent numeric oracles for the graph analytics.

The SPARQL engine, the procedural traversal, *and* linear algebra /
networkx must all agree:

* EQ11 path counts  == row sums of adjacency-matrix powers (A^k);
* EQ12 triangles    == trace(A^3)  (valid because the data has no
  self-loops, so every closed 3-walk visits distinct vertices);
* ``follows+``      == networkx descendants;
* EQ9/EQ10          == networkx degree views.
"""

import networkx as nx
import numpy as np
import pytest

from repro.core import MODEL_NG, PropertyGraphRdfStore
from repro.datasets.twitter import TwitterConfig, generate_twitter, hub_vertex
from repro.propertygraph.traversal import count_paths, count_triangles


@pytest.fixture(scope="module")
def setup():
    graph = generate_twitter(TwitterConfig(egos=6, seed=5))
    store = PropertyGraphRdfStore(model=MODEL_NG)
    store.load(graph)
    directed = nx.DiGraph()
    directed.add_nodes_from(v.id for v in graph.vertices())
    directed.add_edges_from(
        (e.source, e.target) for e in graph.edges() if e.label == "follows"
    )
    nodes = sorted(directed.nodes)
    index = {node: i for i, node in enumerate(nodes)}
    adjacency = np.zeros((len(nodes), len(nodes)), dtype=np.int64)
    for source, target in directed.edges:
        adjacency[index[source], index[target]] = 1
    return graph, store, directed, adjacency, index


class TestMatrixPowerOracle:
    def test_no_self_loops(self, setup):
        _, _, directed, _, _ = setup
        assert nx.number_of_selfloops(directed) == 0

    @pytest.mark.parametrize("hops", [1, 2, 3, 4, 5])
    def test_path_counts_equal_matrix_powers(self, setup, hops):
        graph, store, _, adjacency, index = setup
        hub = hub_vertex(graph)
        hub_iri = store.vocabulary.vertex_iri(hub).value
        power = np.linalg.matrix_power(adjacency, hops)
        expected = int(power[index[hub]].sum())
        sparql = store.select(
            store.queries.eq11(hub_iri, hops)
        ).scalar().to_python()
        assert sparql == expected
        assert count_paths(graph, hub, "follows", hops) == expected

    def test_triangles_equal_trace_a_cubed(self, setup):
        graph, store, _, adjacency, _ = setup
        cubed = np.linalg.matrix_power(adjacency, 3)
        expected = int(np.trace(cubed))
        sparql = store.select(store.queries.eq12()).scalar().to_python()
        assert sparql == expected
        assert count_triangles(graph, "follows") == expected


class TestNetworkxOracle:
    def test_follows_plus_equals_descendants(self, setup):
        graph, store, directed, _, _ = setup
        hub = hub_vertex(graph)
        hub_iri = store.vocabulary.vertex_iri(hub).value
        reachable = store.select(
            f"SELECT ?y WHERE {{ <{hub_iri}> r:follows+ ?y }}"
        )
        sparql_nodes = {
            store.vocabulary.parse_vertex_id(term)
            for term in reachable.column("y")
        }
        expected = set(nx.descendants(directed, hub))
        # nx.descendants always excludes the source; `follows+` includes
        # it when the source lies on a cycle.
        if any(
            hub == successor or hub in nx.descendants(directed, successor)
            for successor in directed.successors(hub)
        ):
            expected.add(hub)
        assert sparql_nodes == expected

    def test_follows_star_adds_start(self, setup):
        graph, store, directed, _, _ = setup
        hub = hub_vertex(graph)
        hub_iri = store.vocabulary.vertex_iri(hub).value
        reachable = store.select(
            f"SELECT ?y WHERE {{ <{hub_iri}> r:follows* ?y }}"
        )
        sparql_nodes = {
            store.vocabulary.parse_vertex_id(term)
            for term in reachable.column("y")
        }
        assert sparql_nodes == set(nx.descendants(directed, hub)) | {hub}

    def test_out_degree_distribution_matches_networkx(self, setup):
        graph, store, directed, _, _ = setup
        # Restrict to follows by rebuilding EQ10 over r:follows only.
        result = store.select(
            "SELECT ?outDeg (COUNT(*) as ?cnt) WHERE { "
            "SELECT ?n1 (COUNT(*) as ?outDeg) WHERE { ?n1 r:follows ?n2 } "
            "GROUP BY ?n1 } GROUP BY ?outDeg"
        )
        sparql_hist = {
            row["outDeg"].to_python(): row["cnt"].to_python()
            for row in result
        }
        nx_hist = {}
        for _, degree in directed.out_degree():
            if degree:
                nx_hist[degree] = nx_hist.get(degree, 0) + 1
        assert sparql_hist == nx_hist

    def test_in_degree_distribution_matches_networkx(self, setup):
        graph, store, directed, _, _ = setup
        result = store.select(
            "SELECT ?inDeg (COUNT(*) as ?cnt) WHERE { "
            "SELECT ?n2 (COUNT(*) as ?inDeg) WHERE { ?n1 r:follows ?n2 } "
            "GROUP BY ?n2 } GROUP BY ?inDeg"
        )
        sparql_hist = {
            row["inDeg"].to_python(): row["cnt"].to_python() for row in result
        }
        nx_hist = {}
        for _, degree in directed.in_degree():
            if degree:
                nx_hist[degree] = nx_hist.get(degree, 0) + 1
        assert sparql_hist == nx_hist

    def test_two_hop_neighborhood(self, setup):
        graph, store, directed, _, _ = setup
        hub = hub_vertex(graph)
        hub_iri = store.vocabulary.vertex_iri(hub).value
        result = store.select(
            f"SELECT DISTINCT ?y WHERE {{ <{hub_iri}> r:follows/r:follows ?y }}"
        )
        sparql_nodes = {
            store.vocabulary.parse_vertex_id(term)
            for term in result.column("y")
        }
        expected = {
            second
            for first in directed.successors(hub)
            for second in directed.successors(first)
        }
        assert sparql_nodes == expected
