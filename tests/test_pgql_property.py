"""Property-based tests for the PGQL front-end.

Two invariants, over random small property graphs and random MATCH
patterns (1-3 hops, optional labels / property constraints / edge
variables):

* **Compiler correctness**: running the generated PGQL query through
  each encoding's compiler and the shared SPARQL executor returns
  exactly the multiset of rows a naive reference walk over the in-memory
  :class:`~repro.propertygraph.PropertyGraph` produces.  Like SPARQL
  (and unlike Cypher), the subset uses homomorphism semantics: the walk
  may revisit edges.
* **Unparser fixed point**: ``parse(unparse(parse(q))) == parse(q)`` for
  both generated patterns and the hand-written EQ corpus.

``REPRO_PGQL_EXAMPLES`` scales the example count (CI runs a deeper
pass; the default keeps the suite fast locally).
"""

import os
from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.core import MODEL_NG, MODEL_RF, MODEL_SP, PropertyGraphRdfStore
from repro.pgql import parse, pgql_experiment_queries, unparse
from repro.propertygraph import PropertyGraph

MODELS = [MODEL_NG, MODEL_RF, MODEL_SP]
MAX_EXAMPLES = int(os.environ.get("REPRO_PGQL_EXAMPLES", "25"))

# Small domains so random graphs and random patterns actually collide.
# Node and edge property keys are deliberately disjoint: Table 3's rule 3
# compiles a node constraint to a bare `?n <key> <value>` triple, which in
# SP/RF would also match *edge* resources carrying the same key — exactly
# as the paper's hand-written SPARQL would.
_LABELS = ("knows", "likes")
_NODE_KEYS = ("color", "size")
_EDGE_KEYS = ("weight",)
_COLORS = ("red", "green")
_SIZES = (1, 2)
_WEIGHTS = (1, 2)


@st.composite
def graphs(draw):
    graph = PropertyGraph("random")
    vertex_count = draw(st.integers(min_value=2, max_value=6))
    for vertex_id in range(1, vertex_count + 1):
        vertex = graph.add_vertex(vertex_id)
        if draw(st.booleans()):
            vertex.add_property("color", draw(st.sampled_from(_COLORS)))
        if draw(st.booleans()):
            vertex.add_property("size", draw(st.sampled_from(_SIZES)))
    seen = set()
    for _ in range(draw(st.integers(min_value=1, max_value=10))):
        source = draw(st.integers(min_value=1, max_value=vertex_count))
        target = draw(st.integers(min_value=1, max_value=vertex_count))
        label = draw(st.sampled_from(_LABELS))
        if (source, label, target) in seen:  # no parallel duplicates
            continue
        seen.add((source, label, target))
        edge = graph.add_edge(source, label, target)
        if draw(st.booleans()):
            edge.add_property("weight", draw(st.sampled_from(_WEIGHTS)))
    return graph


@st.composite
def patterns(draw):
    """A random 1-3 hop MATCH chain, as (text, structure).

    ``structure`` is ``(node_constraints, edge_specs)`` where
    ``node_constraints[i]`` is a dict of required node properties and
    ``edge_specs[i]`` is ``(label_or_None, edge_props)``.
    """
    hops = draw(st.integers(min_value=1, max_value=3))
    node_constraints = []
    node_texts = []
    for index in range(hops + 1):
        props = {}
        if draw(st.booleans()):
            key = draw(st.sampled_from(_NODE_KEYS))
            props[key] = draw(
                st.sampled_from(_COLORS if key == "color" else _SIZES)
            )
        node_constraints.append(props)
        body = f"n{index}"
        if props:
            ((key, value),) = props.items()
            rendered = f"'{value}'" if isinstance(value, str) else str(value)
            body += f" {{{key}: {rendered}}}"
        node_texts.append(f"({body})")
    edge_specs = []
    edge_texts = []
    for index in range(hops):
        label = draw(st.one_of(st.none(), st.sampled_from(_LABELS)))
        props = {}
        if draw(st.booleans()):
            props["weight"] = draw(st.sampled_from(_WEIGHTS))
        edge_specs.append((label, props))
        body = f"e{index}" if draw(st.booleans()) else ""
        if label is not None:
            body += f":{label}"
        if props:
            rendered = ", ".join(f"{k}: {v}" for k, v in props.items())
            body += f" {{{rendered}}}"
        edge_texts.append(f"-[{body}]->" if body else "-[]->")
    chain = node_texts[0]
    for index in range(hops):
        chain += edge_texts[index] + node_texts[index + 1]
    returns = ", ".join(f"n{index}" for index in range(hops + 1))
    return f"MATCH {chain} RETURN {returns}", (node_constraints, edge_specs)


def _reference_walk(graph, structure):
    """All homomorphic chain embeddings, as vertex-id tuples (multiset)."""
    node_constraints, edge_specs = structure

    def node_ok(vertex_id, constraints):
        vertex = graph.vertex(vertex_id)
        return all(
            vertex.has_property_value(key, value)
            for key, value in constraints.items()
        )

    all_edges = list(graph.edges())
    rows = []

    def extend(prefix):
        position = len(prefix) - 1
        if position == len(edge_specs):
            rows.append(tuple(prefix))
            return
        label, edge_props = edge_specs[position]
        for edge in all_edges:
            if edge.source != prefix[-1]:
                continue
            if label is not None and edge.label != label:
                continue
            if not all(
                edge.has_property_value(key, value)
                for key, value in edge_props.items()
            ):
                continue
            if not node_ok(edge.target, node_constraints[position + 1]):
                continue
            extend(prefix + [edge.target])

    for vertex in graph.vertices():
        if node_ok(vertex.id, node_constraints[0]):
            extend([vertex.id])
    return Counter(rows)


class TestCompilerAgainstReferenceWalk:
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    @given(graph=graphs(), pattern=patterns())
    def test_every_encoding_matches_the_walk(self, graph, pattern):
        text, structure = pattern
        expected = _reference_walk(graph, structure)
        for model in MODELS:
            store = PropertyGraphRdfStore(model=model)
            store.load(graph)
            vertex_iri = store.vocabulary.vertex_iri
            actual = Counter(
                tuple(row) for row in store.pgql(text).rows
            )
            wanted = Counter(
                {
                    tuple(vertex_iri(v) for v in row): count
                    for row, count in expected.items()
                }
            )
            assert actual == wanted, (
                f"{model}: {text!r} returned {sum(actual.values())} rows, "
                f"reference walk {sum(wanted.values())}"
            )


class TestUnparseFixedPoint:
    @settings(max_examples=MAX_EXAMPLES * 4, deadline=None)
    @given(pattern=patterns())
    def test_generated_patterns(self, pattern):
        text, _ = pattern
        first = parse(text)
        assert parse(unparse(first)) == first

    def test_eq_corpus(self):
        for text in pgql_experiment_queries("#tag1", 1).values():
            first = parse(text)
            assert parse(unparse(first)) == first
