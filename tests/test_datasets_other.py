"""Tests for the SNAP loader and the WordNet / Fact Book generators."""

import os

import pytest

from repro.datasets.factbook import FB, generate_factbook
from repro.datasets.snap import SnapFormatError, load_snap_ego_networks
from repro.datasets.wordnet import WN, expansion_query, generate_wordnet
from repro.rdf import IRI, Literal, Quad, RDF


@pytest.fixture
def snap_dir(tmp_path):
    """A miniature SNAP ego-network file set: ego 100, alters 1..3."""
    d = tmp_path / "snap"
    d.mkdir()
    (d / "100.featnames").write_text(
        "0 #music\n1 @alice\n2 #web\n"
    )
    (d / "100.egofeat").write_text("1 0 1\n")
    (d / "100.feat").write_text(
        "1 1 1 0\n"
        "2 1 0 1\n"
        "3 0 0 1\n"
    )
    (d / "100.edges").write_text("1 2\n2 3\n1 2\n")  # duplicate edge line
    return str(d)


class TestSnapLoader:
    def test_nodes_and_edges(self, snap_dir):
        graph = load_snap_ego_networks(snap_dir)
        assert graph.vertex_count == 4  # ego + 3 alters
        follows = [e for e in graph.edges() if e.label == "follows"]
        knows = [e for e in graph.edges() if e.label == "knows"]
        assert len(follows) == 2  # duplicate line merged
        assert len(knows) == 3

    def test_node_features(self, snap_dir):
        graph = load_snap_ego_networks(snap_dir)
        assert graph.vertex(1).has_property_value("hasTag", "#music")
        assert graph.vertex(1).has_property_value("refs", "@alice")
        assert graph.vertex(3).has_property_value("hasTag", "#web")

    def test_edge_kvs_are_intersections(self, snap_dir):
        graph = load_snap_ego_networks(snap_dir)
        for edge in graph.edges():
            source = set(graph.vertex(edge.source).kv_pairs())
            target = set(graph.vertex(edge.target).kv_pairs())
            assert set(edge.kv_pairs()) == source & target

    def test_ego_knows_edges_have_kvs(self, snap_dir):
        graph = load_snap_ego_networks(snap_dir)
        knows = [e for e in graph.edges()
                 if e.label == "knows" and e.target == 2]
        (edge,) = knows
        # ego has {#music, #web}; alter 2 has {#music, #web}.
        assert edge.has_property_value("hasTag", "#music")

    def test_limit(self, snap_dir):
        graph = load_snap_ego_networks(snap_dir, limit=1)
        assert graph.vertex_count == 4

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(SnapFormatError):
            load_snap_ego_networks(str(tmp_path))

    def test_malformed_featnames(self, tmp_path):
        d = tmp_path / "bad"
        d.mkdir()
        (d / "5.featnames").write_text("brokenline\n")
        (d / "5.edges").write_text("1 2\n")
        with pytest.raises(SnapFormatError):
            load_snap_ego_networks(str(d))

    def test_feature_vector_too_long(self, tmp_path):
        d = tmp_path / "bad2"
        d.mkdir()
        (d / "5.featnames").write_text("0 #a\n")
        (d / "5.feat").write_text("1 1 1\n")
        (d / "5.edges").write_text("1 1\n")
        with pytest.raises(SnapFormatError):
            load_snap_ego_networks(str(d))


class TestWordnet:
    def test_paper_example_synset_present(self):
        quads = generate_wordnet()
        labels = {
            q.object.lexical
            for q in quads
            if q.predicate == WN.senseLabel
        }
        assert {"train", "educate", "prepare"} <= labels

    def test_senses_linked_to_synsets(self):
        quads = generate_wordnet()
        senses = [q for q in quads if q.predicate == WN.inSynset]
        assert len(senses) == sum(
            1 for q in quads if q.predicate == WN.senseLabel
        )

    def test_expansion_query_text(self):
        text = expansion_query("train")
        assert 'senseLabel "train"@en-us' in text
        assert "CONCAT" in text

    def test_custom_synsets(self):
        quads = generate_wordnet([("s1", ["a", "b"])])
        assert sum(1 for q in quads if q.predicate == RDF.type) == 3


class TestFactbook:
    def test_figure10_subgraph_present(self):
        quads = set(generate_factbook())
        assert Quad(FB.USA, FB.nbr, FB.Mexico) in quads
        assert Quad(FB.USA, FB.bndry, FB.GulfCoast) in quads
        assert Quad(FB.GulfCoast, FB.ports, FB.Tampa) in quads

    def test_ports_typed(self):
        quads = generate_factbook()
        port_types = [
            q for q in quads
            if q.predicate == RDF.type and q.object == FB.Port
        ]
        assert len(port_types) >= 6

    def test_neighbor_inference_reaches_tampa(self):
        """Section 5.2: Mexico/Canada are neighbours of a country with
        port Tampa — derivable with a property chain + neighbour hop."""
        from repro.inference import owl_rl_closure
        from repro.inference.owl import property_chain_rule
        from repro.inference.rules import Rule, var
        from repro.rdf import Triple

        triples = [q.triple() for q in generate_factbook()]
        has_port = property_chain_rule(
            "has-port", [FB.bndry, FB.ports], FB.hasPort
        )
        nbr_port = Rule(
            "nbr-of-port",
            body=((var("c"), FB.nbr, var("d")), (var("d"), FB.hasPort, var("p"))),
            head=((var("c"), FB.nbrOfPort, var("p")),),
        )
        closure = owl_rl_closure(triples, extra_rules=[has_port, nbr_port])
        assert Triple(FB.Mexico, FB.nbrOfPort, FB.Tampa) in closure
        assert Triple(FB.Canada, FB.nbrOfPort, FB.Tampa) in closure
