"""Unit tests for semantic models (partitions)."""

import pytest

from repro.store import IndexSpecError, SemanticModel

QUADS = [
    (1, 10, 2, 0),
    (1, 10, 3, 0),
    (2, 10, 3, 5),
    (2, 11, 1, 5),
]


def make_model(**kwargs):
    model = SemanticModel("m", **kwargs)
    model.bulk_load(QUADS)
    return model


class TestLifecycle:
    def test_default_indexes(self):
        model = SemanticModel("m")
        assert model.index_specs == ["PCSG", "PSCG"]

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            SemanticModel("")

    def test_create_index_backfills(self):
        model = make_model()
        model.create_index("GSPCM")
        assert sorted(model.index("GSPC").range_scan((None, None, None, 5))) == [
            (2, 10, 3, 5),
            (2, 11, 1, 5),
        ]

    def test_create_index_idempotent(self):
        model = make_model()
        first = model.create_index("GSPC")
        assert model.create_index("GSPCM") is first

    def test_drop_index(self):
        model = make_model()
        model.create_index("GSPC")
        model.drop_index("GSPCM")
        assert not model.has_index("GSPC")

    def test_cannot_drop_last_index(self):
        model = SemanticModel("m", index_specs=["PCSG"])
        with pytest.raises(IndexSpecError):
            model.drop_index("PCSG")

    def test_drop_missing_index(self):
        with pytest.raises(IndexSpecError):
            make_model().drop_index("GSPC")


class TestDml:
    def test_insert(self):
        model = make_model()
        assert model.insert((9, 9, 9, 0))
        assert (9, 9, 9, 0) in model
        assert len(model) == len(QUADS) + 1

    def test_insert_duplicate_returns_false(self):
        model = make_model()
        assert not model.insert(QUADS[0])
        assert len(model) == len(QUADS)

    def test_delete(self):
        model = make_model()
        assert model.delete(QUADS[0])
        assert QUADS[0] not in model
        # indexes updated too
        assert QUADS[0] not in list(model.scan((None, None, None, None)))

    def test_delete_missing_returns_false(self):
        assert not make_model().delete((99, 99, 99, 99))

    def test_bulk_load_merges_duplicates(self):
        model = make_model()
        added = model.bulk_load([QUADS[0], (7, 7, 7, 0)])
        assert added == 1
        assert len(model) == len(QUADS) + 1

    def test_clear(self):
        model = make_model()
        model.clear()
        assert len(model) == 0
        assert list(model.scan((None, None, None, None))) == []


class TestAccessPaths:
    def test_choose_index_prefers_longest_prefix(self):
        model = make_model()
        index, length = model.choose_index((1, 10, None, None))
        assert index.spec == "PSCG"  # P,S prefix beats P,C prefix of PCSG
        assert length == 2

    def test_choose_index_object_bound(self):
        model = make_model()
        index, length = model.choose_index((None, 10, 3, None))
        assert index.spec == "PCSG"
        assert length == 2

    def test_scan_matches_naive_filter(self):
        model = make_model()
        pattern = (None, 10, None, None)
        naive = sorted(q for q in QUADS if q[1] == 10)
        assert sorted(model.scan(pattern)) == naive

    def test_estimate(self):
        model = make_model()
        assert model.estimate((None, 10, None, None)) == 3
        assert model.estimate((None, None, None, None)) == len(QUADS)

    def test_distinct_counts(self):
        counts = make_model().distinct_counts()
        assert counts == {"subjects": 2, "predicates": 2, "objects": 3, "graphs": 1}

    def test_table_storage_scales_with_rows(self):
        small = SemanticModel("a")
        small.bulk_load(QUADS[:1])
        big = make_model()
        assert big.table_storage_bytes() > small.table_storage_bytes()


class TestPredicateHistogram:
    def test_counts_by_predicate(self):
        model = make_model()
        assert model.predicate_histogram() == {10: 3, 11: 1}

    def test_empty_model(self):
        assert SemanticModel("m").predicate_histogram() == {}

    def test_sp_skew_visible(self):
        """SP's one-property-per-edge skew shows up in the histogram."""
        from repro.core import MODEL_NG, MODEL_SP, PropertyGraphRdfStore
        from repro.datasets.twitter import TwitterConfig, generate_twitter

        graph = generate_twitter(TwitterConfig(egos=4, seed=2))
        histograms = {}
        for name in (MODEL_NG, MODEL_SP):
            store = PropertyGraphRdfStore(model=name)
            store.load(graph)
            histograms[name] = store.network.model("pg").predicate_histogram()
        assert len(histograms[MODEL_SP]) > len(histograms[MODEL_NG]) + (
            graph.edge_count - 1
        )
        # NG: few predicates, large counts.
        assert max(histograms[MODEL_NG].values()) > 100
        # SP: the per-edge predicates each appear exactly once.
        singletons = sum(
            1 for count in histograms[MODEL_SP].values() if count == 1
        )
        assert singletons >= graph.edge_count
