"""Query-formulation tests: Section 2.3 rules, Table 3, and the key
cross-model invariant — RF, NG and SP answer every property graph query
identically."""

import pytest

from repro.core import (
    MODEL_NG,
    MODEL_RF,
    MODEL_SP,
    PgQueryBuilder,
    PropertyGraphRdfStore,
)
from repro.propertygraph import PropertyGraph

MODELS = [MODEL_RF, MODEL_NG, MODEL_SP]


@pytest.fixture(scope="module")
def sample_graph():
    """A graph exercising all query categories: a follows-triangle with
    edge KVs, node KVs, and a knows edge."""
    graph = PropertyGraph("sample")
    for i, name in [(1, "Amy"), (2, "Mira"), (3, "Zed")]:
        graph.add_vertex(i, {"name": name, "age": 20 + i})
    graph.add_edge(1, "follows", 2, {"since": 2007, "weight": 5}, edge_id=10)
    graph.add_edge(2, "follows", 3, {"since": 2009}, edge_id=11)
    graph.add_edge(3, "follows", 1, {"since": 2011}, edge_id=12)
    graph.add_edge(1, "knows", 2, {"firstMetAt": "MIT"}, edge_id=13)
    return graph


@pytest.fixture(scope="module")
def stores(sample_graph):
    built = {}
    for model in MODELS:
        store = PropertyGraphRdfStore(model=model)
        store.load(sample_graph)
        built[model] = store
    return built


def rows(store, query):
    result = store.select(query)
    return sorted(
        tuple(term.n3() if term is not None else None for term in row)
        for row in result.rows
    )


class TestQueryText:
    def test_q1_identical_across_models(self):
        texts = {PgQueryBuilder(m).q1_triangles() for m in MODELS}
        assert len(texts) == 1

    def test_q2_model_specific(self):
        texts = {m: PgQueryBuilder(m).q2_edges_with_kvs() for m in MODELS}
        assert "rdf:subject" in texts[MODEL_RF]
        assert "GRAPH ?e" in texts[MODEL_NG]
        assert "rdfs:subPropertyOf" in texts[MODEL_SP]

    def test_q3_uses_isliteral(self):
        text = PgQueryBuilder(MODEL_NG).q3_node_kvs("name", "Amy")
        assert "isLiteral" in text

    def test_q4_uses_isiri(self):
        assert "isIRI" in PgQueryBuilder(MODEL_NG).q4_all_edges()

    def test_eq11_builds_sequence_path(self):
        text = PgQueryBuilder(MODEL_NG).eq11("http://pg/v1", 3)
        assert text.count("r:follows") == 3
        assert "/" in text

    def test_eq11_rejects_zero_hops(self):
        with pytest.raises(ValueError):
            PgQueryBuilder(MODEL_NG).eq11("http://pg/v1", 0)

    def test_experiment_suite_complete(self):
        suite = PgQueryBuilder(MODEL_NG).experiment_queries("#t", "http://pg/v1")
        expected = {
            "EQ1", "EQ2", "EQ3", "EQ4", "EQ5", "EQ6", "EQ7", "EQ8",
            "EQ9", "EQ10", "EQ11a", "EQ11b", "EQ11c", "EQ11d", "EQ11e",
            "EQ12",
        }
        assert set(suite) == expected

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            PgQueryBuilder("XX")


class TestCrossModelEquivalence:
    """The same property graph query returns the same answers no matter
    which PG-as-RDF encoding is used."""

    def test_q1_triangles(self, stores):
        results = {
            m: rows(stores[m], stores[m].queries.q1_triangles())
            for m in MODELS
        }
        assert results[MODEL_RF] == results[MODEL_NG] == results[MODEL_SP]
        assert len(results[MODEL_NG]) == 3  # the triangle, 3 rotations

    def test_q2_edges_with_kvs(self, stores):
        results = {
            m: rows(stores[m], stores[m].queries.q2_edges_with_kvs("follows"))
            for m in MODELS
        }
        assert results[MODEL_RF] == results[MODEL_NG] == results[MODEL_SP]
        # 3 follows edges with 4 KVs between them.
        assert len(results[MODEL_NG]) == 4

    def test_q3_node_kvs(self, stores):
        results = {
            m: rows(stores[m], stores[m].queries.q3_node_kvs("name", "Amy"))
            for m in MODELS
        }
        assert results[MODEL_RF] == results[MODEL_NG] == results[MODEL_SP]
        assert len(results[MODEL_NG]) == 2  # name + age

    def test_q4_all_edges(self, stores):
        ng = set(rows(stores[MODEL_NG], stores[MODEL_NG].queries.q4_all_edges()))
        rf = set(rows(stores[MODEL_RF], stores[MODEL_RF].queries.q4_all_edges()))
        sp = set(rows(stores[MODEL_SP], stores[MODEL_SP].queries.q4_all_edges()))
        # Q4 returns vertex pairs; RF/SP contain extra resource-valued
        # triples (reification / subPropertyOf) that the paper's rule 1b
        # tolerates, so compare on the NG answer being contained.
        assert ng <= rf and ng <= sp

    def test_edge_kv_filter_query(self, stores):
        """Find edges since 2009 or later and their endpoints."""
        for model in MODELS:
            store = stores[model]
            q = store.queries
            body = q.edge_with_kvs_pattern("?x", "follows", "?y")
            query = (
                f"SELECT ?x ?y WHERE {{ {body} ?e k:since ?yr "
                "FILTER (?yr >= 2009) }"
            )
            result = store.select(query)
            assert len(result) == 2, model

    def test_eq12_triangle_count_equal(self, stores):
        counts = {
            m: stores[m].select(stores[m].queries.eq12()).scalar().to_python()
            for m in MODELS
        }
        assert counts[MODEL_RF] == counts[MODEL_NG] == counts[MODEL_SP] == 3

    def test_eq11_path_counts_equal(self, stores):
        vocab = stores[MODEL_NG].vocabulary
        start = vocab.vertex_iri(1).value
        for hops in (1, 2, 3):
            counts = {
                m: stores[m]
                .select(stores[m].queries.eq11(start, hops))
                .scalar()
                .to_python()
                for m in MODELS
            }
            assert len(set(counts.values())) == 1, (hops, counts)

    def test_eq9_degree_distribution_equal(self, stores):
        results = {
            m: rows(stores[m], stores[m].queries.eq9()) for m in MODELS
        }
        assert results[MODEL_RF] == results[MODEL_NG] == results[MODEL_SP]

    def test_paths_match_procedural_traversal(self, stores, sample_graph):
        from repro.propertygraph.traversal import count_paths

        vocab = stores[MODEL_NG].vocabulary
        start = vocab.vertex_iri(1).value
        for hops in (1, 2, 3, 4):
            sparql_count = (
                stores[MODEL_NG]
                .select(stores[MODEL_NG].queries.eq11(start, hops))
                .scalar()
                .to_python()
            )
            assert sparql_count == count_paths(sample_graph, 1, "follows", hops)

    def test_triangles_match_procedural(self, stores, sample_graph):
        from repro.propertygraph.traversal import count_triangles

        sparql = (
            stores[MODEL_NG].select(stores[MODEL_NG].queries.eq12()).scalar()
        )
        assert sparql.to_python() == count_triangles(sample_graph, "follows")
