"""EXPLAIN ANALYZE: actuals next to estimates, join-strategy switches."""

import pytest

from repro.core import PropertyGraphRdfStore
from repro.datasets.twitter import TwitterConfig, connected_tag, generate_twitter
from repro.obs import ExplainAnalysis
from repro.rdf import IRI, Quad
from repro.sparql import SparqlEngine
from repro.sparql.plan import (
    HASH_JOIN_MIN_ROWS,
    HASH_JOIN_SCAN_FACTOR,
    decide_join,
)
from repro.store import SemanticNetwork

EX = "http://ex/"


def chain_engine(pairs: int) -> SparqlEngine:
    """``pairs`` two-hop chains a_i -p1-> b_i -p2-> c_i."""
    p1, p2 = IRI(EX + "p1"), IRI(EX + "p2")
    quads = []
    for i in range(pairs):
        a, b, c = (IRI(f"{EX}{kind}{i}") for kind in "abc")
        quads.append(Quad(a, p1, b))
        quads.append(Quad(b, p2, c))
    network = SemanticNetwork()
    network.create_model("chain")
    network.bulk_load("chain", quads)
    return SparqlEngine(network, prefixes={"ex": EX}, default_model="chain")


TWO_HOP = "SELECT ?x ?z WHERE { ?x ex:p1 ?y . ?y ex:p2 ?z }"


class TestJoinStrategySwitch:
    def test_decide_join_thresholds(self):
        at = HASH_JOIN_MIN_ROWS
        assert decide_join(at - 1, 10).method == "NLJ"
        assert decide_join(at, 10).method == "hash join"
        # Probe-side scan too large relative to the input: stay NLJ.
        assert decide_join(at, at * HASH_JOIN_SCAN_FACTOR + 1).method == "NLJ"
        assert decide_join(at, at * HASH_JOIN_SCAN_FACTOR).method == "hash join"

    def test_decision_describes_trigger(self):
        assert str(HASH_JOIN_MIN_ROWS) in decide_join(10, 10).describe()
        hash_reason = decide_join(HASH_JOIN_MIN_ROWS, 10).describe()
        assert hash_reason.startswith("hash join")

    def test_large_intermediate_switches_to_hash_join(self):
        engine = chain_engine(HASH_JOIN_MIN_ROWS + 50)
        analysis = engine.explain(TWO_HOP, analyze=True)
        assert isinstance(analysis, ExplainAnalysis)
        methods = [s.join_method for s in analysis.steps if s.operator == "pattern"]
        assert methods == ["NLJ", "hash join"]
        hash_step = analysis.steps[1]
        assert hash_step.rows_in == HASH_JOIN_MIN_ROWS + 50
        assert hash_step.rows_out == HASH_JOIN_MIN_ROWS + 50
        assert "hash join" in hash_step.join_reason
        # The executed result is the analysis' payload.
        assert analysis.stats.rows == HASH_JOIN_MIN_ROWS + 50

    def test_small_intermediate_stays_nlj(self):
        engine = chain_engine(64)
        analysis = engine.explain(TWO_HOP, analyze=True)
        methods = [s.join_method for s in analysis.steps if s.operator == "pattern"]
        assert methods == ["NLJ", "NLJ"]
        nlj_step = analysis.steps[1]
        # An index NLJ probes once per input row.
        assert nlj_step.probes == 64
        assert "NLJ" in nlj_step.join_reason


class TestAnalysisOutput:
    def test_lines_show_estimates_and_actuals(self):
        engine = chain_engine(8)
        analysis = engine.explain(TWO_HOP, analyze=True)
        text = analysis.render()
        for fragment in ("est=", "in=", "out=", "scanned=", "time="):
            assert fragment in text
        assert "index range scan" in text
        # Summary line closes the plan.
        assert analysis.lines[-1].startswith("--")
        assert "8 rows" in analysis.lines[-1]

    def test_static_explain_unchanged(self):
        engine = chain_engine(8)
        plan = engine.explain(TWO_HOP)
        assert isinstance(plan, list)
        assert all(isinstance(line, str) for line in plan)

    def test_analyze_does_not_change_results(self):
        engine = chain_engine(32)
        direct = engine.select(TWO_HOP)
        analysis = engine.explain(TWO_HOP, analyze=True)
        assert analysis.result is not None
        assert sorted(map(str, analysis.result.rows)) == sorted(
            map(str, direct.rows)
        )


@pytest.fixture(scope="module")
def model_stores():
    """The paper's three PG-as-RDF models over one small Twitter graph."""
    graph = generate_twitter(TwitterConfig(egos=4, seed=7))
    stores = {}
    for model in ("RF", "NG", "SP"):
        store = PropertyGraphRdfStore(model=model)
        store.load(graph)
        stores[model] = store
    return stores, connected_tag(graph)


@pytest.mark.parametrize(
    "model, query_name",
    [
        ("RF", "eq1"),
        ("NG", "eq1"),
        ("SP", "eq1"),
        # EQ8 exists as the a/b (NG/SP) variants only; on RF its
        # rdfs:subPropertyOf constant is absent from the data and the
        # BGP short-circuits to empty before any pattern executes.
        ("NG", "eq8"),
        ("SP", "eq8"),
    ],
)
def test_eq_variants_populate_actuals(model_stores, model, query_name):
    """EQ1/EQ8 across RF/NG/SP report estimated AND actual rows."""
    stores, tag = model_stores
    store = stores[model]
    query = getattr(store.queries, query_name)(tag)
    analysis = store.explain(query, analyze=True)
    pattern_steps = [s for s in analysis.steps if s.operator == "pattern"]
    assert pattern_steps, f"{model}/{query_name}: no pattern operators"
    for step in pattern_steps:
        assert step.join_method in ("NLJ", "hash join", "cartesian")
        assert step.estimate >= 0
        assert step.probes >= 1
        assert step.rows_matched <= step.rows_scanned
        assert step.index_specs, "scan must name its index"
    # The analysis executed the real query.
    assert analysis.stats.rows == len(store.select(query))


def test_eq8_on_rf_short_circuits_empty(model_stores):
    """RF lacks EQ8's vocabulary: the plan collapses before any scan."""
    stores, tag = model_stores
    store = stores["RF"]
    analysis = store.explain(store.queries.eq8(tag), analyze=True)
    assert analysis.stats.rows == 0
    assert not [s for s in analysis.steps if s.operator == "pattern"]
