"""Round-trip tests: PG -> RDF -> PG is the identity, for all models."""

import pytest

from repro.core import MODEL_NG, MODEL_RF, MODEL_SP, transformer_for
from repro.core.roundtrip import RoundTripError, rdf_to_property_graph
from repro.propertygraph import PropertyGraph
from repro.rdf import IRI, Literal, Quad

MODELS = [MODEL_RF, MODEL_NG, MODEL_SP]


def assert_graphs_equal(left: PropertyGraph, right: PropertyGraph):
    assert left.vertex_count == right.vertex_count
    assert left.edge_count == right.edge_count
    for vertex in left.vertices():
        assert right.vertex(vertex.id).properties == vertex.properties
    for edge in left.edges():
        other = right.edge(edge.id)
        assert (other.source, other.label, other.target) == (
            edge.source, edge.label, edge.target,
        )
        assert other.properties == edge.properties


def roundtrip(graph, model):
    quads = list(transformer_for(model).transform(graph))
    return rdf_to_property_graph(quads, model)


@pytest.mark.parametrize("model", MODELS)
class TestRoundTrip:
    def test_figure1(self, model):
        graph = PropertyGraph()
        graph.add_vertex(1, {"name": "Amy", "age": 23})
        graph.add_vertex(2, {"name": "Mira", "age": 22})
        graph.add_edge(1, "follows", 2, {"since": 2007}, edge_id=3)
        graph.add_edge(1, "knows", 2, {"firstMetAt": "MIT"}, edge_id=4)
        assert_graphs_equal(graph, roundtrip(graph, model))

    def test_isolated_vertex(self, model):
        graph = PropertyGraph()
        graph.add_vertex(5)
        rebuilt = roundtrip(graph, model)
        assert rebuilt.has_vertex(5)
        assert rebuilt.vertex(5).properties == {}

    def test_edge_without_kvs(self, model):
        graph = PropertyGraph()
        graph.add_vertex(1)
        graph.add_vertex(2)
        graph.add_edge(1, "follows", 2, edge_id=9)
        rebuilt = roundtrip(graph, model)
        assert rebuilt.edge(9).label == "follows"
        assert rebuilt.edge(9).properties == {}

    def test_value_types_preserved(self, model):
        graph = PropertyGraph()
        graph.add_vertex(1, {"i": 7, "f": 1.25, "b": True, "s": "txt"})
        graph.add_vertex(2)
        graph.add_edge(1, "l", 2, {"w": 0.5, "n": 3, "ok": False}, edge_id=3)
        rebuilt = roundtrip(graph, model)
        assert rebuilt.vertex(1).properties == {
            "i": 7, "f": 1.25, "b": True, "s": "txt",
        }
        assert rebuilt.edge(3).properties == {"w": 0.5, "n": 3, "ok": False}

    def test_multi_edges_same_endpoints(self, model):
        graph = PropertyGraph()
        graph.add_vertex(1)
        graph.add_vertex(2)
        graph.add_edge(1, "follows", 2, edge_id=10)
        graph.add_edge(1, "follows", 2, edge_id=11)
        graph.add_edge(2, "follows", 1, edge_id=12)
        rebuilt = roundtrip(graph, model)
        assert rebuilt.edge_count == 3

    def test_self_loop(self, model):
        graph = PropertyGraph()
        graph.add_vertex(1)
        graph.add_edge(1, "loop", 1, {"k": "v"}, edge_id=2)
        rebuilt = roundtrip(graph, model)
        assert rebuilt.edge(2).source == rebuilt.edge(2).target == 1

    def test_labels_with_special_characters(self, model):
        graph = PropertyGraph()
        graph.add_vertex(1)
        graph.add_vertex(2)
        graph.add_edge(1, "has tag", 2, edge_id=3)
        graph.vertex(1).set_property("ref key", "#value")
        rebuilt = roundtrip(graph, model)
        assert rebuilt.edge(3).label == "has tag"
        assert rebuilt.vertex(1).properties == {"ref key": "#value"}


class TestRoundTripErrors:
    def test_ng_rejects_malformed_graphless_quad(self):
        quads = [Quad(IRI("http://pg/v1"), IRI("http://x/other"), IRI("http://pg/v2"))]
        with pytest.raises(RoundTripError):
            rdf_to_property_graph(quads, MODEL_NG)

    def test_rf_rejects_incomplete_reification(self):
        from repro.rdf import RDF

        quads = [Quad(IRI("http://pg/e1"), RDF.subject, IRI("http://pg/v1"))]
        with pytest.raises(RoundTripError):
            rdf_to_property_graph(quads, MODEL_RF)

    def test_sp_rejects_edge_without_label(self):
        quads = [Quad(IRI("http://pg/v1"), IRI("http://pg/e1"), IRI("http://pg/v2"))]
        with pytest.raises(RoundTripError):
            rdf_to_property_graph(quads, MODEL_SP)

    def test_orphan_edge_kvs_rejected(self):
        quads = [Quad(IRI("http://pg/e1"), IRI("http://pg/k/k"), Literal("v"))]
        with pytest.raises(RoundTripError):
            rdf_to_property_graph(quads, MODEL_SP)

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            rdf_to_property_graph([], "XX")
