"""Differential testing: the optimized engine vs a brute-force oracle.

A naive reference evaluator matches BGPs by enumerating every quad per
pattern and joining dict bindings — no indexes, no planner, no
push-down.  Hypothesis generates random datasets and random BGP/filter
queries; the optimized engine must return exactly the same bag of
solutions.
"""

import itertools
from typing import Dict, List, Optional

from hypothesis import given, settings, strategies as st

from repro.rdf import IRI, Literal, Quad
from repro.sparql import SparqlEngine
from repro.store import SemanticNetwork

EX = "http://ex/"

# ----------------------------------------------------------------------
# Brute-force reference
# ----------------------------------------------------------------------


def reference_bgp(
    quads: List[Quad],
    patterns: List[tuple],
    union_default: bool = True,
) -> List[Dict[str, object]]:
    """Evaluate a BGP by brute force.  Patterns are (s, p, o) with
    '?name' strings as variables and Terms as constants."""
    solutions: List[Dict[str, object]] = [{}]
    for pattern in patterns:
        next_solutions = []
        for binding in solutions:
            for quad in quads:
                candidate = dict(binding)
                ok = True
                for part, value in zip(
                    pattern, (quad.subject, quad.predicate, quad.object)
                ):
                    if isinstance(part, str) and part.startswith("?"):
                        name = part[1:]
                        if name in candidate:
                            if candidate[name] != value:
                                ok = False
                                break
                        else:
                            candidate[name] = value
                    elif part != value:
                        ok = False
                        break
                if ok:
                    next_solutions.append(candidate)
        solutions = next_solutions
    return solutions


def normalize(solutions, variables):
    return sorted(
        tuple(repr(solution.get(v)) for v in variables)
        for solution in solutions
    )


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

_SUBJECTS = [IRI(EX + name) for name in "abcdef"]
_PREDICATES = [IRI(EX + name) for name in ("p", "q", "r")]
_OBJECTS = _SUBJECTS + [Literal("x"), Literal("y"), Literal.from_python(1)]
_GRAPHS = [None, IRI(EX + "g1"), IRI(EX + "g2")]

_quads = st.lists(
    st.builds(
        Quad,
        subject=st.sampled_from(_SUBJECTS),
        predicate=st.sampled_from(_PREDICATES),
        object=st.sampled_from(_OBJECTS),
        graph=st.sampled_from(_GRAPHS),
    ),
    min_size=0,
    max_size=25,
    unique_by=lambda q: (q.subject, q.predicate, q.object, q.graph),
)

_VARS = ["?u", "?v", "?w", "?x"]
_slot = st.one_of(
    st.sampled_from(_VARS),
    st.sampled_from(_SUBJECTS),
)
_pred_slot = st.one_of(st.sampled_from(_VARS), st.sampled_from(_PREDICATES))
_obj_slot = st.one_of(st.sampled_from(_VARS), st.sampled_from(_OBJECTS))

_patterns = st.lists(
    st.tuples(_slot, _pred_slot, _obj_slot), min_size=1, max_size=3
)


def _pattern_text(pattern) -> str:
    return " ".join(
        part if isinstance(part, str) else part.n3() for part in pattern
    )


def _query_text(patterns, variables) -> str:
    body = " . ".join(_pattern_text(p) for p in patterns)
    projection = " ".join(variables)
    return f"SELECT {projection} WHERE {{ {body} }}"


def _pattern_variables(patterns) -> List[str]:
    found = []
    for pattern in patterns:
        for part in pattern:
            if isinstance(part, str) and part[1:] not in found:
                found.append(part[1:])
    return found


# ----------------------------------------------------------------------
# The differential tests
# ----------------------------------------------------------------------


class TestEngineMatchesReference:
    @settings(max_examples=120, deadline=None)
    @given(quads=_quads, patterns=_patterns)
    def test_bgp_solutions_identical(self, quads, patterns):
        network = SemanticNetwork()
        network.create_model("m")
        network.bulk_load("m", quads)
        engine = SparqlEngine(network, default_model="m")
        variables = _pattern_variables(patterns)
        if not variables:
            return  # all-constant patterns: covered by ASK below
        query = _query_text(patterns, ["?" + v for v in variables])
        engine_result = engine.select(query)
        engine_rows = sorted(
            tuple(repr(term) for term in row) for row in engine_result.rows
        )
        expected = normalize(reference_bgp(quads, patterns), variables)
        assert engine_rows == expected

    @settings(max_examples=60, deadline=None)
    @given(quads=_quads, patterns=_patterns)
    def test_ask_matches_reference(self, quads, patterns):
        network = SemanticNetwork()
        network.create_model("m")
        network.bulk_load("m", quads)
        engine = SparqlEngine(network, default_model="m")
        body = " . ".join(_pattern_text(p) for p in patterns)
        expected = bool(reference_bgp(quads, patterns))
        assert engine.ask(f"ASK {{ {body} }}") == expected

    @settings(max_examples=60, deadline=None)
    @given(
        quads=_quads,
        patterns=_patterns,
        filter_obj=st.sampled_from(_SUBJECTS),
    )
    def test_filter_equality_matches_reference(
        self, quads, patterns, filter_obj
    ):
        """FILTER (?u = <const>) must agree with post-hoc filtering —
        this exercises the sargable-rewrite path against the oracle."""
        variables = _pattern_variables(patterns)
        if "u" not in variables:
            return
        network = SemanticNetwork()
        network.create_model("m")
        network.bulk_load("m", quads)
        engine = SparqlEngine(network, default_model="m")
        body = " . ".join(_pattern_text(p) for p in patterns)
        query = (
            f"SELECT ?u WHERE {{ {body} "
            f"FILTER (?u = {filter_obj.n3()}) }}"
        )
        engine_rows = sorted(
            repr(row[0]) for row in engine.select(query).rows
        )
        expected = sorted(
            repr(solution["u"])
            for solution in reference_bgp(quads, patterns)
            if solution.get("u") == filter_obj
        )
        assert engine_rows == expected

    @settings(max_examples=40, deadline=None)
    @given(quads=_quads)
    def test_count_matches_quad_count(self, quads):
        network = SemanticNetwork()
        network.create_model("m")
        network.bulk_load("m", quads)
        engine = SparqlEngine(network, default_model="m")
        result = engine.select(
            "SELECT (COUNT(*) AS ?c) WHERE { ?s ?p ?o }"
        )
        assert result.scalar().to_python() == len(quads)
