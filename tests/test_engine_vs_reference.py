"""Differential testing: the optimized engine vs a brute-force oracle.

A naive reference evaluator matches BGPs by enumerating every quad per
pattern and joining dict bindings — no indexes, no planner, no
push-down.  Hypothesis generates random datasets and random BGP/filter
queries; the optimized engine must return exactly the same bag of
solutions.
"""

import itertools
from typing import Dict, List, Optional

from hypothesis import given, settings, strategies as st

from repro.rdf import IRI, Literal, Quad
from repro.sparql import SparqlEngine
from repro.store import SemanticNetwork

EX = "http://ex/"

# ----------------------------------------------------------------------
# Brute-force reference
# ----------------------------------------------------------------------


def reference_bgp(
    quads: List[Quad],
    patterns: List[tuple],
    union_default: bool = True,
) -> List[Dict[str, object]]:
    """Evaluate a BGP by brute force.  Patterns are (s, p, o) with
    '?name' strings as variables and Terms as constants."""
    solutions: List[Dict[str, object]] = [{}]
    for pattern in patterns:
        next_solutions = []
        for binding in solutions:
            for quad in quads:
                candidate = dict(binding)
                ok = True
                for part, value in zip(
                    pattern, (quad.subject, quad.predicate, quad.object)
                ):
                    if isinstance(part, str) and part.startswith("?"):
                        name = part[1:]
                        if name in candidate:
                            if candidate[name] != value:
                                ok = False
                                break
                        else:
                            candidate[name] = value
                    elif part != value:
                        ok = False
                        break
                if ok:
                    next_solutions.append(candidate)
        solutions = next_solutions
    return solutions


def normalize(solutions, variables):
    return sorted(
        tuple(repr(solution.get(v)) for v in variables)
        for solution in solutions
    )


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

_SUBJECTS = [IRI(EX + name) for name in "abcdef"]
_PREDICATES = [IRI(EX + name) for name in ("p", "q", "r")]
_OBJECTS = _SUBJECTS + [Literal("x"), Literal("y"), Literal.from_python(1)]
_GRAPHS = [None, IRI(EX + "g1"), IRI(EX + "g2")]

_quads = st.lists(
    st.builds(
        Quad,
        subject=st.sampled_from(_SUBJECTS),
        predicate=st.sampled_from(_PREDICATES),
        object=st.sampled_from(_OBJECTS),
        graph=st.sampled_from(_GRAPHS),
    ),
    min_size=0,
    max_size=25,
    unique_by=lambda q: (q.subject, q.predicate, q.object, q.graph),
)

_VARS = ["?u", "?v", "?w", "?x"]
_slot = st.one_of(
    st.sampled_from(_VARS),
    st.sampled_from(_SUBJECTS),
)
_pred_slot = st.one_of(st.sampled_from(_VARS), st.sampled_from(_PREDICATES))
_obj_slot = st.one_of(st.sampled_from(_VARS), st.sampled_from(_OBJECTS))

_patterns = st.lists(
    st.tuples(_slot, _pred_slot, _obj_slot), min_size=1, max_size=3
)


def _pattern_text(pattern) -> str:
    return " ".join(
        part if isinstance(part, str) else part.n3() for part in pattern
    )


def _query_text(patterns, variables) -> str:
    body = " . ".join(_pattern_text(p) for p in patterns)
    projection = " ".join(variables)
    return f"SELECT {projection} WHERE {{ {body} }}"


def _pattern_variables(patterns) -> List[str]:
    found = []
    for pattern in patterns:
        for part in pattern:
            if isinstance(part, str) and part[1:] not in found:
                found.append(part[1:])
    return found


# ----------------------------------------------------------------------
# The differential tests
# ----------------------------------------------------------------------


class TestEngineMatchesReference:
    @settings(max_examples=120, deadline=None)
    @given(quads=_quads, patterns=_patterns)
    def test_bgp_solutions_identical(self, quads, patterns):
        network = SemanticNetwork()
        network.create_model("m")
        network.bulk_load("m", quads)
        engine = SparqlEngine(network, default_model="m")
        variables = _pattern_variables(patterns)
        if not variables:
            return  # all-constant patterns: covered by ASK below
        query = _query_text(patterns, ["?" + v for v in variables])
        engine_result = engine.select(query)
        engine_rows = sorted(
            tuple(repr(term) for term in row) for row in engine_result.rows
        )
        expected = normalize(reference_bgp(quads, patterns), variables)
        assert engine_rows == expected

    @settings(max_examples=60, deadline=None)
    @given(quads=_quads, patterns=_patterns)
    def test_ask_matches_reference(self, quads, patterns):
        network = SemanticNetwork()
        network.create_model("m")
        network.bulk_load("m", quads)
        engine = SparqlEngine(network, default_model="m")
        body = " . ".join(_pattern_text(p) for p in patterns)
        expected = bool(reference_bgp(quads, patterns))
        assert engine.ask(f"ASK {{ {body} }}") == expected

    @settings(max_examples=60, deadline=None)
    @given(
        quads=_quads,
        patterns=_patterns,
        filter_obj=st.sampled_from(_SUBJECTS),
    )
    def test_filter_equality_matches_reference(
        self, quads, patterns, filter_obj
    ):
        """FILTER (?u = <const>) must agree with post-hoc filtering —
        this exercises the sargable-rewrite path against the oracle."""
        variables = _pattern_variables(patterns)
        if "u" not in variables:
            return
        network = SemanticNetwork()
        network.create_model("m")
        network.bulk_load("m", quads)
        engine = SparqlEngine(network, default_model="m")
        body = " . ".join(_pattern_text(p) for p in patterns)
        query = (
            f"SELECT ?u WHERE {{ {body} "
            f"FILTER (?u = {filter_obj.n3()}) }}"
        )
        engine_rows = sorted(
            repr(row[0]) for row in engine.select(query).rows
        )
        expected = sorted(
            repr(solution["u"])
            for solution in reference_bgp(quads, patterns)
            if solution.get("u") == filter_obj
        )
        assert engine_rows == expected

    @settings(max_examples=40, deadline=None)
    @given(quads=_quads)
    def test_count_matches_quad_count(self, quads):
        network = SemanticNetwork()
        network.create_model("m")
        network.bulk_load("m", quads)
        engine = SparqlEngine(network, default_model="m")
        result = engine.select(
            "SELECT (COUNT(*) AS ?c) WHERE { ?s ?p ?o }"
        )
        assert result.scalar().to_python() == len(quads)

# ----------------------------------------------------------------------
# Pipeline vs the reference evaluator
# ----------------------------------------------------------------------
#
# The engine now executes through the layered pipeline (algebra ->
# optimizer -> physical operators); the interpreting Evaluator is kept
# as the executable semantic specification.  These tests require the
# two to return multiset-identical results — on the paper's full
# Table 10 suite (EQ1-EQ12) and on Hypothesis-generated queries.

import pytest

from repro.core import MODEL_NG, MODEL_SP, PropertyGraphRdfStore
from repro.datasets.twitter import (
    TwitterConfig,
    connected_tag,
    generate_twitter,
    hub_vertex,
)
from repro.sparql.eval import Evaluator
from repro.sparql.results import SelectResult


def run_legacy(engine, ast, model=None):
    """Run an AST through the pre-refactor interpreting evaluator."""
    model_name = engine._model_name(model)
    evaluator = Evaluator(
        engine.network,
        engine.network.model(model_name),
        union_default_graph=engine._union_default,
        filter_pushdown=engine._filter_pushdown,
    )
    from repro.sparql.ast import (
        AskQuery,
        ConstructQuery,
        DescribeQuery,
        SelectQuery,
    )

    if isinstance(ast, SelectQuery):
        return evaluator.select(ast)
    if isinstance(ast, AskQuery):
        return evaluator.ask(ast)
    if isinstance(ast, ConstructQuery):
        return evaluator.construct(ast)
    if isinstance(ast, DescribeQuery):
        return evaluator.describe(ast)
    raise AssertionError(f"unsupported form {type(ast).__name__}")


def as_multiset(result):
    if isinstance(result, SelectResult):
        return sorted(tuple(repr(t) for t in row) for row in result.rows)
    if isinstance(result, list):  # CONSTRUCT / DESCRIBE triples
        return sorted(repr(t) for t in result)
    return result


def assert_same(engine, text, model=None):
    ast = engine._parse_query(text)
    pipeline = engine.run_ast(ast, model, text=text)
    legacy = run_legacy(engine, ast, model)
    if isinstance(pipeline, SelectResult):
        assert pipeline.variables == legacy.variables
    assert as_multiset(pipeline) == as_multiset(legacy)


@pytest.fixture(scope="module")
def twitter_stores():
    graph = generate_twitter(TwitterConfig(egos=5, seed=13))
    stores = {}
    for model in (MODEL_NG, MODEL_SP):
        store = PropertyGraphRdfStore(model=model)
        store.load(graph)
        stores[model] = store
    tag = connected_tag(graph)
    hub_iri = stores[MODEL_NG].vocabulary.vertex_iri(hub_vertex(graph)).value
    return stores, tag, hub_iri


class TestPipelineMatchesEvaluatorOnEQSuite:
    @pytest.mark.parametrize("model", [MODEL_NG, MODEL_SP])
    def test_every_experiment_query_is_multiset_identical(
        self, twitter_stores, model
    ):
        stores, tag, hub_iri = twitter_stores
        store = stores[model]
        suite = store.queries.experiment_queries(tag, hub_iri)
        for name, query in suite.items():
            ast = store.engine._parse_query(query)
            pipeline = store.engine.run_ast(ast, None, text=query)
            legacy = run_legacy(store.engine, ast)
            assert pipeline.variables == legacy.variables, name
            assert as_multiset(pipeline) == as_multiset(legacy), name


class TestPipelineMatchesEvaluatorOnForms:
    """Feature coverage beyond the EQ suite: every clause the parser
    accepts must behave identically through both execution paths."""

    QUERIES = [
        "SELECT ?x ?n WHERE { ?x <http://ex/knows> ?y . "
        "?x <http://ex/name> ?n } ORDER BY ?n LIMIT 2",
        "SELECT DISTINCT ?y WHERE { ?x <http://ex/knows> ?y }",
        "SELECT ?x WHERE { ?x <http://ex/knows> ?y "
        "OPTIONAL { ?y <http://ex/age> ?a } FILTER (!bound(?a) || ?a > 25) }",
        "SELECT ?x WHERE { { ?x <http://ex/knows> ?y } UNION "
        "{ ?x <http://ex/likes> ?y } }",
        "SELECT ?x WHERE { ?x <http://ex/knows> ?y "
        "MINUS { ?x <http://ex/age> ?a FILTER (?a > 25) } }",
        "SELECT ?x (COUNT(?y) AS ?c) WHERE { ?x <http://ex/knows> ?y } "
        "GROUP BY ?x HAVING (COUNT(?y) > 1)",
        "SELECT ?x ?z WHERE { ?x (<http://ex/knows>)+ ?z }",
        "SELECT ?x WHERE { GRAPH <http://ex/g1> { ?x <http://ex/likes> ?y } }",
        "SELECT ?e ?k ?v WHERE { GRAPH ?e { ?x <http://ex/likes> ?y . "
        "?e ?k ?v } }",
        "SELECT ?x ?total WHERE { ?x <http://ex/age> ?a "
        "BIND (?a * 2 AS ?total) }",
        "SELECT ?x WHERE { ?x <http://ex/age> ?a "
        "FILTER EXISTS { ?x <http://ex/knows> ?y } }",
        "SELECT ?x WHERE { VALUES ?x { <http://ex/alice> <http://ex/bob> } "
        "?x <http://ex/knows> ?y }",
        "SELECT (AVG(?a) AS ?avg) (MAX(?a) AS ?max) WHERE "
        "{ ?x <http://ex/age> ?a }",
        "SELECT ?x WHERE { { SELECT ?x (COUNT(*) AS ?deg) WHERE "
        "{ ?x <http://ex/knows> ?y } GROUP BY ?x } FILTER (?deg >= 2) }",
        "ASK { <http://ex/alice> <http://ex/knows> <http://ex/bob> }",
        "ASK { <http://ex/alice> <http://ex/knows> <http://ex/nobody> }",
        "CONSTRUCT { ?y <http://ex/knownBy> ?x } WHERE "
        "{ ?x <http://ex/knows> ?y }",
        "DESCRIBE <http://ex/alice>",
        "DESCRIBE ?x WHERE { ?x <http://ex/age> ?a FILTER (?a > 25) }",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_form_is_identical(self, social_engine, query):
        assert_same(social_engine, query)


class TestPipelineMatchesEvaluatorHypothesis:
    @settings(max_examples=80, deadline=None)
    @given(quads=_quads, patterns=_patterns)
    def test_random_bgps_identical(self, quads, patterns):
        network = SemanticNetwork()
        network.create_model("m")
        network.bulk_load("m", quads)
        engine = SparqlEngine(network, default_model="m")
        variables = _pattern_variables(patterns)
        if not variables:
            return
        query = _query_text(patterns, ["?" + v for v in variables])
        assert_same(engine, query)

    @settings(max_examples=50, deadline=None)
    @given(
        quads=_quads,
        patterns=_patterns,
        optional=_patterns,
        filter_obj=st.sampled_from(_SUBJECTS),
    )
    def test_random_optional_filter_identical(
        self, quads, patterns, optional, filter_obj
    ):
        network = SemanticNetwork()
        network.create_model("m")
        network.bulk_load("m", quads)
        engine = SparqlEngine(network, default_model="m")
        variables = _pattern_variables(patterns)
        if "u" not in variables:
            return
        body = " . ".join(_pattern_text(p) for p in patterns)
        opt = " . ".join(_pattern_text(p) for p in optional)
        query = (
            f"SELECT ?u WHERE {{ {body} OPTIONAL {{ {opt} }} "
            f"FILTER (?u = {filter_obj.n3()}) }}"
        )
        assert_same(engine, query)


# ----------------------------------------------------------------------
# Batch-boundary differentials
# ----------------------------------------------------------------------
#
# Vectorized engines break at batch boundaries, so the whole harness
# above re-runs with the batch size forced to 1 (degenerate batches:
# every operator handoff is a boundary), 2 (windows straddle every
# probe), and 1024 (the default full page).

import contextlib
from collections import Counter

BATCH_SIZES = (1, 2, 1024)


@contextlib.contextmanager
def forced_batch_size(engine, batch_size):
    previous = engine.batch_size
    engine.batch_size = batch_size
    try:
        yield
    finally:
        engine.batch_size = previous


class TestBatchSizeBoundaries:
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize("model", [MODEL_NG, MODEL_SP])
    def test_eq_suite_identical_at_batch_size(
        self, twitter_stores, model, batch_size
    ):
        stores, tag, hub_iri = twitter_stores
        store = stores[model]
        suite = store.queries.experiment_queries(tag, hub_iri)
        with forced_batch_size(store.engine, batch_size):
            for name, query in suite.items():
                ast = store.engine._parse_query(query)
                pipeline = store.engine.run_ast(ast, None, text=query)
                legacy = run_legacy(store.engine, ast)
                assert as_multiset(pipeline) == as_multiset(legacy), (
                    f"{name} at batch_size={batch_size}"
                )

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_feature_queries_identical_at_batch_size(
        self, social_engine, batch_size
    ):
        with forced_batch_size(social_engine, batch_size):
            for query in TestPipelineMatchesEvaluatorOnForms.QUERIES:
                assert_same(social_engine, query)

    @settings(max_examples=40, deadline=None)
    @given(
        quads=_quads,
        patterns=_patterns,
        filter_obj=st.none() | st.sampled_from(_SUBJECTS),
        limit=st.none() | st.integers(min_value=0, max_value=4),
    )
    def test_random_bgp_filter_limit_at_every_batch_size(
        self, quads, patterns, filter_obj, limit
    ):
        network = SemanticNetwork()
        network.create_model("m")
        network.bulk_load("m", quads)
        engine = SparqlEngine(network, default_model="m")
        variables = _pattern_variables(patterns)
        if not variables:
            return
        if filter_obj is not None and "u" not in variables:
            filter_obj = None
        body = " . ".join(_pattern_text(p) for p in patterns)
        if filter_obj is not None:
            body += f" FILTER (?u = {filter_obj.n3()})"
        projection = " ".join("?" + v for v in variables)
        base = f"SELECT {projection} WHERE {{ {body} }}"
        ast = engine._parse_query(base)
        oracle = as_multiset(run_legacy(engine, ast))
        for batch_size in BATCH_SIZES:
            with forced_batch_size(engine, batch_size):
                full = as_multiset(engine.select(base))
                assert full == oracle, f"batch_size={batch_size}"
                if limit is None:
                    continue
                # LIMIT without ORDER BY may keep any rows, so the
                # differential property is: the right count, and a
                # sub-multiset of the unlimited result.
                limited = as_multiset(
                    engine.select(f"{base} LIMIT {limit}")
                )
                assert len(limited) == min(limit, len(oracle)), (
                    f"batch_size={batch_size}"
                )
                assert not Counter(limited) - Counter(oracle), (
                    f"batch_size={batch_size}"
                )
