"""Unit tests for the three PG-as-RDF transformers (Table 1, Figure 2)."""

import pytest

from repro.core import (
    MODEL_NG,
    MODEL_RF,
    MODEL_SP,
    PARTITION_EDGE_KV,
    PARTITION_NODE_KV,
    PARTITION_TOPOLOGY,
    transformer_for,
)
from repro.core.vocabulary import PgVocabulary
from repro.propertygraph import PropertyGraph
from repro.rdf import IRI, Literal, Quad, RDF, RDFS, XSD

VOCAB = PgVocabulary()
V1, V2 = VOCAB.vertex_iri(1), VOCAB.vertex_iri(2)
E3 = VOCAB.edge_iri(3)
FOLLOWS = VOCAB.label_iri("follows")
SINCE = VOCAB.key_iri("since")
NAME = VOCAB.key_iri("name")
AGE = VOCAB.key_iri("age")


@pytest.fixture
def figure1():
    """Figure 1 restricted to the follows edge (as in Section 2.1)."""
    graph = PropertyGraph("figure1")
    graph.add_vertex(1, {"name": "Amy", "age": 23})
    graph.add_vertex(2, {"name": "Mira", "age": 22})
    graph.add_edge(1, "follows", 2, {"since": 2007}, edge_id=3)
    return graph


def quads_of(model, graph):
    return set(transformer_for(model).transform(graph))


NODE_KVS = {
    Quad(V1, NAME, Literal("Amy")),
    Quad(V1, AGE, Literal("23", XSD.int)),
    Quad(V2, NAME, Literal("Mira")),
    Quad(V2, AGE, Literal("22", XSD.int)),
}


class TestReification:
    def test_figure2a(self, figure1):
        assert quads_of(MODEL_RF, figure1) == NODE_KVS | {
            Quad(E3, RDF.subject, V1),
            Quad(E3, RDF.predicate, FOLLOWS),
            Quad(E3, RDF.object, V2),
            Quad(V1, FOLLOWS, V2),  # explicit -s-p-o
            Quad(E3, SINCE, Literal("2007", XSD.int)),
        }

    def test_quad_count_formula(self, figure1):
        # 4*E object-prop + eKV + nKV data-prop
        assert len(quads_of(MODEL_RF, figure1)) == 4 * 1 + 1 + 4


class TestNamedGraph:
    def test_figure2c(self, figure1):
        assert quads_of(MODEL_NG, figure1) == NODE_KVS | {
            Quad(V1, FOLLOWS, V2, E3),
            Quad(E3, SINCE, Literal("2007", XSD.int), E3),
        }

    def test_edge_kvs_clustered_in_edge_graph(self, figure1):
        kv_quads = [
            quad
            for quad in quads_of(MODEL_NG, figure1)
            if quad.predicate == SINCE
        ]
        assert all(quad.graph == E3 for quad in kv_quads)

    def test_node_kvs_in_default_graph(self, figure1):
        for quad in quads_of(MODEL_NG, figure1):
            if quad.predicate in (NAME, AGE):
                assert quad.graph is None


class TestSubProperty:
    def test_figure2b(self, figure1):
        assert quads_of(MODEL_SP, figure1) == NODE_KVS | {
            Quad(V1, E3, V2),
            Quad(E3, RDFS.subPropertyOf, FOLLOWS),
            Quad(V1, FOLLOWS, V2),  # explicit -s-p-o
            Quad(E3, SINCE, Literal("2007", XSD.int)),
        }

    def test_quad_count_formula(self, figure1):
        assert len(quads_of(MODEL_SP, figure1)) == 3 * 1 + 1 + 4


class TestSharedBehaviour:
    def test_isolated_vertex_special_case(self):
        graph = PropertyGraph()
        graph.add_vertex(9)
        for model in (MODEL_RF, MODEL_NG, MODEL_SP):
            quads = quads_of(model, graph)
            assert quads == {
                Quad(VOCAB.vertex_iri(9), RDF.type, RDFS.Resource)
            }

    def test_vertex_with_kv_not_special_cased(self):
        graph = PropertyGraph()
        graph.add_vertex(9, {"k": "v"})
        quads = quads_of(MODEL_NG, graph)
        assert Quad(VOCAB.vertex_iri(9), RDF.type, RDFS.Resource) not in quads

    def test_edge_without_kvs_still_encoded(self):
        graph = PropertyGraph()
        graph.add_vertex(1)
        graph.add_vertex(2)
        graph.add_edge(1, "follows", 2, edge_id=3)
        assert Quad(V1, FOLLOWS, V2, E3) in quads_of(MODEL_NG, graph)
        assert Quad(E3, RDFS.subPropertyOf, FOLLOWS) in quads_of(MODEL_SP, graph)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            transformer_for("XX")

    def test_model_names_case_insensitive(self):
        assert transformer_for("ng").model == MODEL_NG


class TestPartitioning:
    def test_partition_assignment_ng(self, figure1):
        partitions = {}
        for partition, quad in transformer_for(MODEL_NG).transform_partitioned(
            figure1
        ):
            partitions.setdefault(partition, set()).add(quad)
        assert partitions[PARTITION_TOPOLOGY] == {Quad(V1, FOLLOWS, V2, E3)}
        assert partitions[PARTITION_EDGE_KV] == {
            Quad(E3, SINCE, Literal("2007", XSD.int), E3)
        }
        assert partitions[PARTITION_NODE_KV] == NODE_KVS

    def test_partition_assignment_sp_anchor_triples_in_edge_kv(self, figure1):
        partitions = {}
        for partition, quad in transformer_for(MODEL_SP).transform_partitioned(
            figure1
        ):
            partitions.setdefault(partition, set()).add(quad)
        # Section 3.2: -s-e-o and -e-sPO-p live with the edge KVs.
        assert Quad(V1, E3, V2) in partitions[PARTITION_EDGE_KV]
        assert (
            Quad(E3, RDFS.subPropertyOf, FOLLOWS)
            in partitions[PARTITION_EDGE_KV]
        )
        assert partitions[PARTITION_TOPOLOGY] == {Quad(V1, FOLLOWS, V2)}

    def test_partition_assignment_rf(self, figure1):
        partitions = {}
        for partition, quad in transformer_for(MODEL_RF).transform_partitioned(
            figure1
        ):
            partitions.setdefault(partition, set()).add(quad)
        assert partitions[PARTITION_TOPOLOGY] == {Quad(V1, FOLLOWS, V2)}
        assert Quad(E3, RDF.subject, V1) in partitions[PARTITION_EDGE_KV]
