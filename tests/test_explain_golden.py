"""Golden EXPLAIN snapshots for the Table 10 experiment queries.

Pins the full pipeline plan (logical -> optimized -> physical) for
every EQ query on a fixed synthetic Twitter dataset.  A plan change —
a new rewrite rule, a different join order, a physical operator rename
— shows up as a readable diff against ``tests/golden/explain/``.

Regenerate intentionally with::

    UPDATE_GOLDEN=1 pytest tests/test_explain_golden.py
"""

import json
import os
import pathlib

import pytest

from repro.cli import main as cli_main
from repro.core import MODEL_NG, PropertyGraphRdfStore
from repro.datasets.twitter import (
    TwitterConfig,
    connected_tag,
    generate_twitter,
    hub_vertex,
)
from repro.rdf import serialize_nquads

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden" / "explain"


@pytest.fixture(scope="module")
def ng_setup():
    graph = generate_twitter(TwitterConfig(egos=5, seed=13))
    store = PropertyGraphRdfStore(model=MODEL_NG)
    store.load(graph)
    # Snapshots embed the plan header's batch size; pin it so the
    # REPRO_BATCH_SIZE=1 CI leg diffs plans, not configuration.
    store.engine.batch_size = 1024
    tag = connected_tag(graph)
    hub_iri = store.vocabulary.vertex_iri(hub_vertex(graph)).value
    suite = store.queries.experiment_queries(tag, hub_iri)
    return store, suite


def _names(suite):
    return sorted(suite)


class TestGoldenExplainSnapshots:
    def test_every_eq_query_matches_its_snapshot(self, ng_setup):
        store, suite = ng_setup
        update = bool(os.environ.get("UPDATE_GOLDEN"))
        if update:
            GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        mismatches = []
        for name in _names(suite):
            actual = "\n".join(store.engine.explain_plan(suite[name])) + "\n"
            path = GOLDEN_DIR / f"{name}.txt"
            if update:
                path.write_text(actual)
                continue
            assert path.exists(), (
                f"missing golden snapshot {path}; run with UPDATE_GOLDEN=1"
            )
            if path.read_text() != actual:
                mismatches.append(name)
        assert not mismatches, (
            f"plan snapshots changed for {mismatches}; inspect the diff "
            "and regenerate with UPDATE_GOLDEN=1 if intentional"
        )

    def test_snapshots_cover_the_full_suite(self, ng_setup):
        _, suite = ng_setup
        assert len(suite) == 16  # EQ1-EQ10, EQ11a-e, EQ12

    def test_snapshots_name_physical_operators(self, ng_setup):
        store, suite = ng_setup
        text = "\n".join(store.engine.explain_plan(suite["EQ1"]))
        assert "IndexScan" in text
        # EQ3's chain starts from a sargable-seeded column, so every
        # pattern step joins against prior bindings.
        eq3 = "\n".join(store.engine.explain_plan(suite["EQ3"]))
        assert "IndexNestedLoopJoin" in eq3
        assert "Seed(?t" in eq3
        path_text = "\n".join(store.engine.explain_plan(suite["EQ11c"]))
        assert "PathClosure" in path_text


class TestExplainJsonRoundTrip:
    def test_engine_json_is_serializable_and_faithful(self, ng_setup):
        store, suite = ng_setup
        document = store.engine.explain_plan(suite["EQ8"], format="json")
        reloaded = json.loads(json.dumps(document))
        assert reloaded == document
        assert reloaded["form"] == "select"
        assert {"logical", "optimized", "physical"} <= set(reloaded)

        def ops(node):
            yield node["op"]
            for child in node.get("children", ()):
                yield from ops(child)

        assert "BGP" in set(ops(reloaded["logical"]))
        physical_ops = set(ops(reloaded["physical"]))
        assert "Project" in physical_ops

    def test_cli_format_json_round_trips(self, ng_setup, tmp_path, capsys):
        store, suite = ng_setup
        data = tmp_path / "data.nq"
        data.write_text(serialize_nquads(store.quads()))
        assert cli_main([
            "explain", str(data), "--format=json", "-q", suite["EQ1"],
        ]) == 0
        captured = capsys.readouterr().out
        document = json.loads(captured)
        assert {"logical", "optimized", "physical", "access_plan"} <= set(
            document
        )
        # Round trip: parse -> dump -> parse is stable.
        assert json.loads(json.dumps(document)) == document
