"""Property tests (hypothesis) for the packed columnar index pages.

The page layer is the storage kernel under every index scan, so it is
proven, not hoped, correct:

* the delta and dictionary codecs round-trip arbitrary int runs
  (including negatives and unsorted input — sortedness only buys
  compression, never correctness);
* a :class:`Page` is a faithful columnar image of the keys it was
  built from (decode, random access, bisect, window slices);
* :class:`PagedKeys` under arbitrary insert/delete interleavings with
  tiny pages (boundaries and splits everywhere) behaves exactly like a
  plain sorted tuple list, and a :class:`SemanticIndex` on top of it
  range-scans exactly like naive filtering;
* published (frozen) pages are immutable: after ``share()`` a writer's
  inserts and deletes never change a snapshot's results, nor a single
  packed byte of the pages the snapshot captured;
* index layout constants are cached per spec: every spelling of the
  same spec shares one (order, inverse) pair.
"""

from bisect import bisect_left

from hypothesis import given, settings, strategies as st

from repro.store import SemanticIndex
from repro.store.index import layout_for
from repro.store.pages import (
    Page,
    PagedKeys,
    delta_decode,
    delta_encode,
    dict_decode,
    dict_encode,
)

# Values stay well inside signed 64-bit so deltas can never overflow;
# the sign is exercised explicitly (IDs are positive, codecs are not
# allowed to rely on that).
_INTS = st.integers(min_value=-(2**40), max_value=2**40)
_IDS = st.integers(min_value=0, max_value=2**20)

_KEYS = st.lists(
    st.tuples(_IDS, _IDS, _IDS, _IDS), min_size=1, max_size=60,
    unique=True,
).map(sorted)


# ----------------------------------------------------------------------
# Codec round-trips
# ----------------------------------------------------------------------


class TestCodecRoundTrips:
    @given(st.lists(_INTS, max_size=200))
    def test_delta_round_trips_any_run(self, values):
        count, first, deltas = delta_encode(values)
        assert delta_decode(count, first, deltas) == values

    @given(st.lists(_INTS, max_size=200))
    def test_dict_round_trips_any_run(self, values):
        dictionary, codes = dict_encode(values)
        assert dict_decode(dictionary, codes) == values

    @given(st.lists(_INTS, min_size=2, max_size=200, unique=True).map(sorted))
    def test_delta_on_sorted_runs_is_narrow_when_dense(self, values):
        count, first, deltas = delta_encode(values)
        assert count == len(values)
        assert first == values[0]
        # Sorted input means non-negative deltas bounded by the spread.
        spread = values[-1] - values[0]
        assert all(d >= 0 for d in deltas)
        if spread <= 0x7F:
            assert deltas.itemsize == 1

    @given(st.lists(_INTS, max_size=200))
    def test_dict_codes_are_first_seen_order(self, values):
        dictionary, codes = dict_encode(values)
        assert len(dictionary) == len(set(values))
        assert len(codes) == len(values)
        # The dictionary lists distinct values in first-seen order.
        seen = list(dict.fromkeys(values))
        assert list(dictionary) == seen


# ----------------------------------------------------------------------
# Page: a faithful columnar image of its keys
# ----------------------------------------------------------------------


class TestPageFaithfulness:
    @given(_KEYS)
    def test_page_decodes_to_its_keys(self, keys):
        page = Page.build(keys)
        assert page.count == len(keys)
        assert page.first == keys[0]
        assert page.last == keys[-1]
        assert page.keys() == keys
        assert [page.key(i) for i in range(page.count)] == keys

    @given(_KEYS, st.data())
    def test_window_slices_match_list_slices(self, keys, data):
        page = Page.build(keys)
        lo = data.draw(st.integers(min_value=0, max_value=len(keys)))
        hi = data.draw(st.integers(min_value=lo, max_value=len(keys)))
        assert page.keys(lo, hi) == keys[lo:hi]
        cols = page.columns(lo, hi)
        assert list(zip(*cols)) == keys[lo:hi]

    @given(_KEYS, st.tuples(_IDS, _IDS, _IDS, _IDS))
    def test_bisect_matches_sorted_list_bisect(self, keys, target):
        page = Page.build(keys)
        assert page.bisect_left(target) == bisect_left(keys, target)
        # Prefix targets (how range scans seek) behave identically too.
        for plen in (1, 2, 3):
            prefix = target[:plen]
            assert page.bisect_left(prefix) == bisect_left(keys, prefix)

    @given(_KEYS)
    def test_packed_bytes_never_beat_raw_by_lying(self, keys):
        page = Page.build(keys)
        # tobytes() is the canonical packed payload; the key cache used
        # by probes must not change it.
        before = page.tobytes()
        page.keys()  # populates the decode cache
        assert page.tobytes() == before


# ----------------------------------------------------------------------
# PagedKeys + SemanticIndex vs the plain sorted-tuple model
# ----------------------------------------------------------------------

_OPS = st.lists(
    st.tuples(st.booleans(), st.tuples(_IDS, _IDS, _IDS, _IDS)),
    max_size=80,
)


class TestPagedKeysModelEquivalence:
    @settings(max_examples=60)
    @given(_OPS, st.integers(min_value=1, max_value=4))
    def test_insert_delete_matches_sorted_set(self, ops, page_size):
        paged = PagedKeys(page_size)
        model = set()
        for is_insert, key in ops:
            if is_insert:
                paged.insert(key)
                model.add(key)
            else:
                paged.delete(key)
                model.discard(key)
            assert len(paged) == len(model)
        assert list(paged) == sorted(model)

    @settings(max_examples=60)
    @given(_OPS, st.integers(min_value=1, max_value=4), st.data())
    def test_seek_and_rank_match_bisect(self, ops, page_size, data):
        paged = PagedKeys(page_size)
        model = set()
        for is_insert, key in ops:
            if is_insert:
                paged.insert(key)
                model.add(key)
            else:
                paged.delete(key)
                model.discard(key)
        ordered = sorted(model)
        target = data.draw(st.tuples(_IDS, _IDS, _IDS, _IDS))
        assert paged.rank(target) == bisect_left(ordered, target)

    @settings(max_examples=40)
    @given(_OPS, st.data())
    def test_index_range_scan_equals_naive_filter(self, ops, data):
        # page_size=2 puts a page boundary after every other key, so
        # every scan crosses boundaries and every split path runs.
        index = SemanticIndex("PCSGM", page_size=2)
        model = set()
        for is_insert, quad in ops:
            if is_insert:
                index.insert(quad)
                model.add(quad)
            else:
                index.delete(quad)
                model.discard(quad)
        pattern = data.draw(
            st.tuples(*(st.none() | _IDS for _ in range(4)))
        )
        expected = sorted(
            q
            for q in model
            if all(p is None or q[i] == p for i, p in enumerate(pattern))
        )
        assert sorted(index.range_scan(pattern)) == expected
        assert sorted(index.range_rows(pattern, (0, 1, 2, 3))) == expected
        # The batched access path sees the same rows in the same order.
        flat = [
            row
            for batch in index.range_row_batches(pattern, (0, 1, 2, 3))
            for row in batch
        ]
        assert flat == list(index.range_rows(pattern, (0, 1, 2, 3)))
        # max_rows chunking changes batch boundaries, never content.
        chunked = [
            row
            for batch in index.range_row_batches(
                pattern, (0, 1, 2, 3), max_rows=1
            )
            for row in batch
        ]
        assert chunked == flat


# ----------------------------------------------------------------------
# COW immutability of published pages
# ----------------------------------------------------------------------


class TestPublishedPageImmutability:
    @settings(max_examples=40)
    @given(
        st.lists(
            st.tuples(_IDS, _IDS, _IDS, _IDS), min_size=1, max_size=40,
            unique=True,
        ),
        _OPS,
    )
    def test_writes_never_touch_published_pages(self, initial, ops):
        paged = PagedKeys(page_size=3)
        for key in sorted(initial):
            paged.insert(key)
        pages = paged.freeze()
        snapshot = paged.share()
        snapshot_keys = list(snapshot)
        payloads = [page.tobytes() for page in pages]
        for is_insert, key in ops:
            if is_insert:
                paged.insert(key)
            else:
                paged.delete(key)
        # The snapshot still yields exactly what it captured, and not
        # one byte of any published page changed.
        assert list(snapshot) == snapshot_keys
        assert [page.tobytes() for page in pages] == payloads

    def test_share_then_write_on_snapshot_leaves_writer_alone(self):
        paged = PagedKeys(page_size=2)
        for i in range(6):
            paged.insert((i, 0, 0, 0))
        paged.freeze()
        snapshot = paged.share()
        snapshot.delete((0, 0, 0, 0))
        snapshot.insert((99, 0, 0, 0))
        assert (0, 0, 0, 0) in list(paged)
        assert (99, 0, 0, 0) not in list(paged)


# ----------------------------------------------------------------------
# Index layout cache: one (order, inverse) pair per spec
# ----------------------------------------------------------------------


class TestLayoutCacheAliasing:
    def test_spellings_of_one_spec_share_layout_constants(self):
        a = SemanticIndex("PCSGM")
        b = SemanticIndex("pcsg")
        c = SemanticIndex("PcSgM")
        assert a.spec == b.spec == c.spec == "PCSG"
        assert a.order is b.order is c.order
        assert a._inverse is b._inverse is c._inverse

    def test_layout_for_caches_by_alias_and_normalized_form(self):
        assert layout_for("pscgm") is layout_for("PSCG")
        assert layout_for("pscgm") is layout_for("pscgm")

    def test_distinct_specs_get_distinct_layouts(self):
        assert layout_for("PCSG")[1] != layout_for("PSCG")[1]
