"""Unit tests for namespace helpers."""

import pytest

from repro.rdf import IRI, Namespace, OWL, RDF, RDFS, XSD


class TestNamespace:
    def test_attribute_access(self):
        rel = Namespace("http://pg/r/")
        assert rel.follows == IRI("http://pg/r/follows")

    def test_item_access(self):
        key = Namespace("http://pg/k/")
        assert key["age"] == IRI("http://pg/k/age")

    def test_contains(self):
        rel = Namespace("http://pg/r/")
        assert IRI("http://pg/r/follows") in rel
        assert IRI("http://pg/k/age") not in rel

    def test_local_name(self):
        rel = Namespace("http://pg/r/")
        assert rel.local_name(IRI("http://pg/r/follows")) == "follows"

    def test_local_name_outside_namespace(self):
        rel = Namespace("http://pg/r/")
        with pytest.raises(ValueError):
            rel.local_name(IRI("http://other/x"))

    def test_private_attribute_not_minted(self):
        rel = Namespace("http://pg/r/")
        with pytest.raises(AttributeError):
            rel._secret  # noqa: B018


class TestStandardVocabularies:
    def test_rdf(self):
        assert RDF.type.value == "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
        assert RDF.subject.value.endswith("#subject")

    def test_rdfs(self):
        assert RDFS.subPropertyOf.value.endswith("rdf-schema#subPropertyOf")

    def test_owl(self):
        assert OWL.sameAs.value.endswith("owl#sameAs")

    def test_xsd(self):
        assert XSD.int.value == "http://www.w3.org/2001/XMLSchema#int"
