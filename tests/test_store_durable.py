"""Crash-recovery tests for the durable (WAL + checkpoint) store."""

import os
import shutil
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.obs import metrics
from repro.rdf import IRI, Literal, Quad
from repro.store import DurableNetwork, SemanticNetwork, open_durable, recover_network
from repro.store.durable import CHECKPOINT_NAME, WAL_NAME
from repro.store.persist import load_network, save_network
from repro.store.wal import WalError, WriteAheadLog
from repro.testing.faults import (
    CrashSchedule,
    SimulatedCrash,
    retry,
    torn_file_factory,
)

EX = "http://ex/"


def ex(name):
    return IRI(EX + name)


@pytest.fixture(autouse=True)
def _metrics_off():
    metrics.disable()
    metrics.reset()
    yield
    metrics.disable()
    metrics.reset()


def state(network) -> dict:
    """Comparable snapshot: model names and their quads."""
    return {
        "models": sorted(network.model_names),
        "virtual": sorted(network.virtual_model_names),
        "quads": {
            name: sorted(map(repr, network.quads(name)))
            for name in network.model_names
        },
    }


# A scripted operation sequence covering every WAL record type.  Each
# step is (description, callable(network)); applying a prefix of it to
# a plain SemanticNetwork gives the expected post-recovery state.
def scripted_ops():
    return [
        ("create m", lambda n: n.create_model("m")),
        ("insert a", lambda n: n.insert("m", Quad(ex("a"), ex("p"), ex("b")))),
        ("insert g", lambda n: n.insert(
            "m", Quad(ex("b"), ex("p"), ex("c"), ex("g1")))),
        ("bulk", lambda n: n.bulk_load("m", [
            Quad(ex("c"), ex("p"), Literal("x")),
            Quad(ex("d"), ex("p"), Literal.from_python(7)),
        ])),
        ("create k", lambda n: n.create_model("k")),
        ("insert k", lambda n: n.insert("k", Quad(ex("k"), ex("q"), ex("v")))),
        ("virtual", lambda n: n.create_virtual_model("all", ["m", "k"])),
        ("delete a", lambda n: n.delete("m", Quad(ex("a"), ex("p"), ex("b")))),
        ("clear g1", lambda n: n.clear_model("m", ex("g1"))),
        ("drop k2", lambda n: n.drop_model("all")),
    ]


def expected_after(k: int) -> SemanticNetwork:
    network = SemanticNetwork()
    for _, op in scripted_ops()[:k]:
        op(network)
    return network


class TestRecoverBasics:
    def test_recover_matches_live(self, tmp_path):
        directory = str(tmp_path / "store")
        with open_durable(directory) as store:
            for _, op in scripted_ops():
                op(store)
            live = state(store)
        recovered, stats = recover_network(directory)
        assert state(recovered) == live
        assert stats.wal_records == stats.applied + stats.skipped + stats.errors
        assert stats.errors == 0

    def test_reopen_is_recovery(self, tmp_path):
        directory = str(tmp_path / "store")
        with open_durable(directory) as store:
            store.create_model("m")
            store.insert("m", Quad(ex("a"), ex("p"), ex("b")))
        with open_durable(directory) as store:
            assert state(store) == state(expected_after(2))
            assert store.recovery_stats.applied == 2

    def test_checkpoint_bounds_replay(self, tmp_path):
        directory = str(tmp_path / "store")
        with open_durable(directory) as store:
            store.create_model("m")
            store.insert("m", Quad(ex("a"), ex("p"), ex("b")))
            store.checkpoint()
            store.insert("m", Quad(ex("b"), ex("p"), ex("c")))
        recovered, stats = recover_network(directory)
        assert stats.checkpoint_loaded
        assert stats.wal_records == 1  # only the post-checkpoint insert
        assert len(list(recovered.quads("m"))) == 2

    def test_empty_wal(self, tmp_path):
        directory = str(tmp_path / "store")
        os.makedirs(directory)
        WriteAheadLog(os.path.join(directory, WAL_NAME)).close()
        recovered, stats = recover_network(directory)
        assert state(recovered) == state(SemanticNetwork())
        assert stats.wal_records == 0
        assert not stats.checkpoint_loaded

    def test_checkpoint_only_directory(self, tmp_path):
        directory = str(tmp_path / "store")
        with open_durable(directory) as store:
            store.create_model("m")
            store.insert("m", Quad(ex("a"), ex("p"), ex("b")))
            store.checkpoint()
        os.remove(os.path.join(directory, WAL_NAME))
        recovered, stats = recover_network(directory)
        assert stats.checkpoint_loaded
        assert stats.wal_records == 0
        assert len(list(recovered.quads("m"))) == 1

    def test_corrupt_record_mid_file(self, tmp_path):
        directory = str(tmp_path / "store")
        with open_durable(directory) as store:
            store.create_model("m")
            wal_path = os.path.join(directory, WAL_NAME)
            second_at = os.path.getsize(wal_path)
            store.insert("m", Quad(ex("a"), ex("p"), ex("b")))
            store.insert("m", Quad(ex("b"), ex("p"), ex("c")))
        with open(wal_path, "rb+") as handle:
            handle.seek(second_at + 8 + 2)
            byte = handle.read(1)
            handle.seek(second_at + 8 + 2)
            handle.write(bytes([byte[0] ^ 0xFF]))
        recovered, stats = recover_network(directory)
        # Only the prefix before the corruption survives.
        assert stats.corrupt_records == 1
        assert stats.wal_records == 1
        assert list(recovered.quads("m")) == []
        # Reopening truncates the corrupt tail and stays usable.
        with open_durable(directory) as store:
            store.insert("m", Quad(ex("x"), ex("p"), ex("y")))
        recovered, stats = recover_network(directory)
        assert stats.corrupt_records == 0
        assert len(list(recovered.quads("m"))) == 1

    def test_duplicate_model_create_is_idempotent(self, tmp_path):
        """The checkpoint-written-but-WAL-not-reset crash window."""
        directory = str(tmp_path / "store")
        with open_durable(directory) as store:
            store.create_model("m")
            store.insert("m", Quad(ex("a"), ex("p"), ex("b")))
            # Simulate the crash window: checkpoint exists AND the WAL
            # still holds the full history (normally reset atomically).
            save_network(store, os.path.join(directory, CHECKPOINT_NAME))
        recovered, stats = recover_network(directory)
        assert stats.checkpoint_loaded
        assert stats.skipped >= 1  # the duplicate create_model + insert
        assert stats.errors == 0
        assert len(list(recovered.quads("m"))) == 1

    def test_recovery_metrics_published(self, tmp_path):
        directory = str(tmp_path / "store")
        with open_durable(directory) as store:
            store.create_model("m")
            store.insert("m", Quad(ex("a"), ex("p"), ex("b")))
        metrics.enable()
        recover_network(directory)
        registry = metrics.registry()
        assert registry.counter("recovery.runs") == 1
        assert registry.counter("recovery.records_replayed") == 2
        assert registry.counter("recovery.operations_applied") == 2


class TestCheckpointCrashWindows:
    def test_recovery_finishes_interrupted_checkpoint_swap(self, tmp_path):
        # The high-severity window: a crash between the checkpoint
        # swap's renames leaves the snapshot only under checkpoint.new.
        # Recovery must finish the swap, not silently start empty.
        directory = str(tmp_path / "store")
        with open_durable(directory) as store:
            store.create_model("m")
            store.insert("m", Quad(ex("a"), ex("p"), ex("b")))
            store.checkpoint()  # WAL reset: the data lives only here
            store.insert("m", Quad(ex("b"), ex("p"), ex("c")))
        checkpoint = os.path.join(directory, CHECKPOINT_NAME)
        os.rename(checkpoint, checkpoint + ".new")

        recovered, stats = recover_network(directory)
        assert stats.checkpoint_loaded
        expected = SemanticNetwork()
        expected.create_model("m")
        expected.insert("m", Quad(ex("a"), ex("p"), ex("b")))
        expected.insert("m", Quad(ex("b"), ex("p"), ex("c")))
        assert state(recovered) == state(expected)
        # The swap was finished on disk, not just papered over.
        assert os.path.isdir(checkpoint)
        assert not os.path.exists(checkpoint + ".new")

    def test_recovery_restores_parked_checkpoint(self, tmp_path):
        # Crash with the old snapshot parked as checkpoint.old and no
        # .new published (legacy protocol): fall back to the parked one.
        directory = str(tmp_path / "store")
        with open_durable(directory) as store:
            store.create_model("m")
            store.insert("m", Quad(ex("a"), ex("p"), ex("b")))
            store.checkpoint()
        checkpoint = os.path.join(directory, CHECKPOINT_NAME)
        os.rename(checkpoint, checkpoint + ".old")

        recovered, stats = recover_network(directory)
        assert stats.checkpoint_loaded
        assert state(recovered) == state(expected_after(2))

    def test_file_factory_survives_checkpoint(self, tmp_path):
        # _reset_wal must reopen the log through the injected factory,
        # or crash tests spanning a checkpoint stop injecting faults.
        directory = str(tmp_path / "store")
        opened = []

        def factory(path):
            opened.append(path)
            return open(path, "ab")

        store = DurableNetwork(directory, file_factory=factory)
        try:
            store.create_model("m")
            assert len(opened) == 1
            store.checkpoint()
            assert len(opened) == 2
        finally:
            store.close()

    def test_poisoned_wal_stops_acknowledging(self, tmp_path):
        # Once an append fails mid-frame the log refuses further writes
        # instead of appending records behind the tear (where recovery,
        # which stops at the first bad frame, would silently drop them).
        directory = str(tmp_path / "store")
        store = DurableNetwork(directory, file_factory=torn_file_factory(400))
        store.create_model("m")
        with pytest.raises(SimulatedCrash):
            for i in range(100):
                store.insert("m", Quad(ex(f"s{i}"), ex("p"), ex("o")))
        with pytest.raises(WalError):
            store.insert("m", Quad(ex("late"), ex("p"), ex("o")))
        # Recovery over the same directory restores exactly the
        # committed prefix and restores write service.
        with open_durable(directory) as reopened:
            assert reopened.recovery_stats.corrupt_records == 0
            assert reopened.insert("m", Quad(ex("late"), ex("p"), ex("o")))


class TestCrashAtEveryOffset:
    def test_recovered_equals_committed_prefix(self, tmp_path):
        """The tentpole property: crash at *every* WAL byte offset and
        check the recovered store equals the acknowledged prefix."""
        # First, a clean run to learn the final WAL size.
        clean_dir = str(tmp_path / "clean")
        with open_durable(clean_dir) as store:
            for _, op in scripted_ops():
                op(store)
        total = os.path.getsize(os.path.join(clean_dir, WAL_NAME))

        # Sweep crash points: every 7th byte plus the file ends keeps
        # the sweep dense but the test fast.
        budgets = sorted(set(range(0, total + 1, 7)) | {0, 1, total})
        for budget in budgets:
            directory = str(tmp_path / f"crash-{budget}")
            acknowledged = 0
            store = None
            try:
                store = DurableNetwork(
                    directory, file_factory=torn_file_factory(budget)
                )
                for _, op in scripted_ops():
                    op(store)
                    acknowledged += 1
            except SimulatedCrash:
                pass  # the op in flight was never acknowledged
            recovered, stats = recover_network(directory)
            assert stats.corrupt_records == 0, budget
            assert state(recovered) == state(expected_after(acknowledged)), (
                f"budget={budget} acknowledged={acknowledged}"
            )


ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 5), st.integers(0, 3)),
        st.tuples(st.just("delete"), st.integers(0, 5), st.integers(0, 3)),
        st.tuples(st.just("clear"), st.just(0), st.just(0)),
    ),
    max_size=12,
)


def apply_random_op(network, op):
    kind, s, o = op
    if kind == "insert":
        network.insert("m", Quad(ex(f"s{s}"), ex("p"), ex(f"o{o}")))
    elif kind == "delete":
        network.delete("m", Quad(ex(f"s{s}"), ex("p"), ex(f"o{o}")))
    else:
        network.clear_model("m")


class TestRecoveryFixedPoint:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(ops=ops_strategy)
    def test_recover_save_recover_is_identity(self, ops):
        """recover -> save -> load is a fixed point of the store state."""
        root = tempfile.mkdtemp(prefix="durable-prop-")
        try:
            directory = os.path.join(root, "store")
            with open_durable(directory) as store:
                store.create_model("m")
                for op in ops:
                    apply_random_op(store, op)
            recovered, _ = recover_network(directory)
            snapshot_dir = os.path.join(root, "snapshot")
            save_network(recovered, snapshot_dir)
            reloaded = load_network(snapshot_dir)
            assert state(reloaded) == state(recovered)
            rerecovered, _ = recover_network(directory)
            assert state(rerecovered) == state(recovered)
        finally:
            shutil.rmtree(root, ignore_errors=True)


class TestFaultPrimitives:
    def test_crash_schedule_fires_on_nth_hit(self):
        schedule = CrashSchedule({"point": 3})
        schedule.reach("point")
        schedule.reach("point")
        with pytest.raises(SimulatedCrash):
            schedule.reach("point")
        assert schedule.hits("point") == 3
        schedule.reach("unarmed")  # unknown points never fire

    def test_crash_schedule_arm(self):
        schedule = CrashSchedule()
        schedule.arm("p", on_hit=1)
        with pytest.raises(SimulatedCrash):
            schedule.reach("p")

    def test_retry_succeeds_after_transient_failures(self):
        delays = []
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        assert retry(flaky, attempts=5, base_delay=0.01,
                     sleep=delays.append) == "ok"
        assert delays == [0.01, 0.02]  # exponential backoff

    def test_retry_reraises_after_budget(self):
        def always_fails():
            raise OSError("permanent")

        with pytest.raises(OSError):
            retry(always_fails, attempts=3, sleep=lambda _: None)

    def test_retry_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            retry(lambda: None, attempts=0)
