"""Unit tests for the semantic network and virtual models."""

import pytest

from repro.rdf import IRI, Literal, Quad, serialize_nquads
from repro.store import SemanticNetwork, StoreError, storage_report

S, P, O, G = (
    IRI("http://x/s"),
    IRI("http://x/p"),
    IRI("http://x/o"),
    IRI("http://x/g"),
)
QUADS = [
    Quad(S, P, O),
    Quad(S, P, Literal("Amy")),
    Quad(O, P, S, G),
]


def loaded_network():
    network = SemanticNetwork()
    network.create_model("m1")
    network.bulk_load("m1", QUADS)
    return network


class TestModelLifecycle:
    def test_create_and_get(self):
        network = SemanticNetwork()
        model = network.create_model("m1")
        assert network.model("m1") is model

    def test_duplicate_name_rejected(self):
        network = SemanticNetwork()
        network.create_model("m1")
        with pytest.raises(StoreError):
            network.create_model("m1")

    def test_unknown_model(self):
        with pytest.raises(StoreError):
            SemanticNetwork().model("nope")

    def test_drop_model(self):
        network = SemanticNetwork()
        network.create_model("m1")
        network.drop_model("m1")
        assert network.model_names == []

    def test_drop_model_with_dependent_virtual_rejected(self):
        network = SemanticNetwork()
        network.create_model("m1")
        network.create_virtual_model("v", ["m1"])
        with pytest.raises(StoreError):
            network.drop_model("m1")
        network.drop_model("v")
        network.drop_model("m1")


class TestLoadAndDml:
    def test_bulk_load_and_roundtrip(self):
        network = loaded_network()
        assert sorted(network.quads("m1"), key=repr) == sorted(QUADS, key=repr)

    def test_bulk_load_nquads(self):
        network = SemanticNetwork()
        network.create_model("m1")
        count = network.bulk_load_nquads("m1", serialize_nquads(QUADS).splitlines())
        assert count == len(QUADS)
        assert network.contains("m1", QUADS[2])

    def test_insert_and_contains(self):
        network = loaded_network()
        new = Quad(O, P, Literal("new"))
        assert not network.contains("m1", new)
        assert network.insert("m1", new)
        assert network.contains("m1", new)

    def test_delete(self):
        network = loaded_network()
        assert network.delete("m1", QUADS[0])
        assert not network.contains("m1", QUADS[0])

    def test_delete_never_seen_term_is_false_without_interning(self):
        network = loaded_network()
        values_before = len(network.values)
        assert not network.delete("m1", Quad(IRI("http://x/never"), P, O))
        assert len(network.values) == values_before

    def test_canonicalization_shares_ids_across_models(self):
        from repro.rdf import XSD

        network = SemanticNetwork()
        network.create_model("a")
        network.create_model("b")
        network.insert("a", Quad(S, P, Literal("023", XSD.int)))
        assert network.contains("a", Quad(S, P, Literal("23", XSD.int)))


class TestVirtualModels:
    def test_union_semantics(self):
        network = SemanticNetwork()
        network.create_model("a")
        network.create_model("b")
        shared = Quad(S, P, O)
        network.insert("a", shared)
        network.insert("b", shared)
        network.insert("b", Quad(O, P, S))
        virtual = network.create_virtual_model("v", ["a", "b"])
        assert len(virtual) == 2  # UNION deduplicates

    def test_union_all(self):
        network = SemanticNetwork()
        network.create_model("a")
        network.create_model("b")
        shared = Quad(S, P, O)
        network.insert("a", shared)
        network.insert("b", shared)
        virtual = network.create_virtual_model("v", ["a", "b"], union_all=True)
        assert len(virtual) == 2

    def test_virtual_scan_merges_members(self):
        network = SemanticNetwork()
        network.create_model("a")
        network.create_model("b")
        network.insert("a", Quad(S, P, O))
        network.insert("b", Quad(O, P, S))
        virtual = network.create_virtual_model("v", ["a", "b"])
        p_id = network.lookup_term(P)
        results = list(virtual.scan((None, p_id, None, None)))
        assert len(results) == 2

    def test_virtual_is_read_only(self):
        network = SemanticNetwork()
        network.create_model("a")
        network.create_virtual_model("v", ["a"])
        with pytest.raises(StoreError):
            network.insert("v", Quad(S, P, O))

    def test_virtual_cannot_nest(self):
        network = SemanticNetwork()
        network.create_model("a")
        network.create_virtual_model("v", ["a"])
        with pytest.raises(StoreError):
            network.create_virtual_model("vv", ["v"])

    def test_virtual_requires_members(self):
        with pytest.raises(ValueError):
            SemanticNetwork().create_virtual_model("v", [])


class TestStorageReport:
    def test_report_covers_all_segments(self):
        network = loaded_network()
        report = storage_report(network)
        assert report.triples_table > 0
        assert report.values_table > 0
        assert set(report.indexes) == {"PCSG", "PSCG"}
        assert report.total == (
            report.triples_table
            + report.values_table
            + sum(report.indexes.values())
        )

    def test_megabyte_rendering(self):
        rows = storage_report(loaded_network()).as_megabytes()
        assert "Triples Table" in rows and "Total" in rows

    def test_subset_of_models(self):
        network = loaded_network()
        network.create_model("empty")
        full = storage_report(network, ["m1"])
        empty = storage_report(network, ["empty"])
        assert empty.triples_table == 0
        assert full.triples_table > 0
