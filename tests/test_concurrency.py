"""Reader-writer lock semantics and the concurrent-access stress test."""

import os
import threading
import time

import pytest

from repro.rdf import IRI, Quad
from repro.sparql import SparqlEngine
from repro.store import LockTimeout, RWLock, SemanticNetwork

EX = "http://ex/"


class TestRWLock:
    def test_many_concurrent_readers(self):
        lock = RWLock()
        inside = []
        barrier = threading.Barrier(4)

        def reader():
            with lock.read_locked():
                barrier.wait(timeout=5)  # all 4 hold the lock at once
                inside.append(1)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert len(inside) == 4

    def test_writer_excludes_readers(self):
        lock = RWLock()
        events = []
        lock.acquire_write()

        def reader():
            with lock.read_locked():
                events.append("read")

        thread = threading.Thread(target=reader)
        thread.start()
        time.sleep(0.05)
        assert events == []  # reader blocked behind the writer
        events.append("write-done")
        lock.release_write()
        thread.join(timeout=5)
        assert events == ["write-done", "read"]

    def test_writer_preference_blocks_new_readers(self):
        lock = RWLock()
        lock.acquire_read()
        writer_acquired = threading.Event()

        def writer():
            lock.acquire_write()
            writer_acquired.set()
            lock.release_write()

        thread = threading.Thread(target=writer)
        thread.start()
        time.sleep(0.05)
        # A waiting writer means new readers queue instead of overtaking.
        assert not lock.acquire_read(timeout=0.1)
        lock.release_read()
        assert writer_acquired.wait(timeout=5)
        thread.join(timeout=5)
        assert lock.acquire_read(timeout=1)
        lock.release_read()

    def test_write_timeout_while_read_held(self):
        lock = RWLock()
        lock.acquire_read()
        start = time.monotonic()
        assert not lock.acquire_write(timeout=0.1)
        assert time.monotonic() - start < 2
        lock.release_read()

    def test_context_manager_timeout_raises(self):
        lock = RWLock()
        lock.acquire_write()
        with pytest.raises(LockTimeout):
            with lock.read_locked(timeout=0.05):
                pass
        lock.release_write()

    def test_unbalanced_release_raises(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()


class TestReadersNeverBlock:
    def test_reads_complete_while_writer_holds_lock(self):
        """MVCC acceptance: with the write lock held for the whole
        test, N reader threads all finish promptly — queries never
        enter the lock."""
        network = SemanticNetwork()
        network.create_model("m")
        network.insert("m", Quad(IRI(f"{EX}a"), IRI(f"{EX}p"), IRI(f"{EX}b")))
        engine = SparqlEngine(network, default_model="m")
        network.lock.acquire_write()
        try:
            finished = []

            def reader():
                for _ in range(20):
                    result = engine.select("SELECT ?s WHERE { ?s ?p ?o }")
                    assert len(result.rows) == 1
                finished.append(1)

            threads = [threading.Thread(target=reader) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=5)
                assert not t.is_alive(), "reader blocked behind write lock"
            assert len(finished) == 4
        finally:
            network.lock.release_write()


@pytest.mark.stress
class TestStress:
    def test_concurrent_readers_and_writers(self):
        """4 readers + 2 writers for >= 5s: no deadlock, no exceptions,
        and every read observes a serially-consistent state.

        Each writer UPDATE atomically inserts one <..a..> and one
        <..b..> triple, so any consistent cut has equal a/b counts; a
        reader seeing a half-applied update would catch unequal counts.
        """
        duration = float(os.environ.get("REPRO_STRESS_SECONDS", "5"))
        network = SemanticNetwork()
        network.create_model("m")
        engine = SparqlEngine(network, default_model="m")
        stop_at = time.monotonic() + duration
        errors = []
        reads = [0]
        writes = [0, 0]

        count_query = (
            "SELECT ?p (COUNT(*) AS ?c) WHERE { ?s ?p ?o } GROUP BY ?p"
        )

        def reader():
            try:
                while time.monotonic() < stop_at:
                    result = engine.select(count_query)
                    counts = {
                        row[0].value: int(row[1].lexical) for row in result.rows
                    }
                    a = counts.get(f"{EX}a", 0)
                    b = counts.get(f"{EX}b", 0)
                    if a != b:
                        errors.append(
                            f"inconsistent read: a={a} b={b}"
                        )
                        return
                    reads[0] += 1
            except Exception as exc:  # noqa: BLE001 - recorded for assert
                errors.append(f"reader: {exc!r}")

        def writer(index):
            try:
                n = 0
                while time.monotonic() < stop_at:
                    engine.update(
                        "INSERT DATA { "
                        f"<{EX}s{index}-{n}> <{EX}a> <{EX}o> . "
                        f"<{EX}s{index}-{n}> <{EX}b> <{EX}o> . "
                        "}"
                    )
                    n += 1
                writes[index] = n
            except Exception as exc:  # noqa: BLE001
                errors.append(f"writer{index}: {exc!r}")

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads += [
            threading.Thread(target=writer, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=duration + 30)
            assert not t.is_alive(), "thread failed to finish (deadlock?)"

        assert errors == []
        assert reads[0] > 0, "readers made no progress"
        assert sum(writes) > 0, "writers made no progress"
        # Final state: every writer pair fully applied.
        final = engine.select(count_query)
        counts = {row[0].value: int(row[1].lexical) for row in final.rows}
        assert counts.get(f"{EX}a") == counts.get(f"{EX}b") == sum(writes)
