"""Unit tests for Triple and Quad position restrictions."""

import pytest

from repro.rdf import IRI, BlankNode, Literal, Quad, Triple, TermError

S = IRI("http://pg/v1")
P = IRI("http://pg/r/follows")
O = IRI("http://pg/v2")
G = IRI("http://pg/e3")


class TestTriple:
    def test_construction(self):
        triple = Triple(S, P, O)
        assert triple.subject == S
        assert triple.predicate == P
        assert triple.object == O

    def test_literal_object_allowed(self):
        assert Triple(S, P, Literal("Amy")).object == Literal("Amy")

    def test_blank_subject_allowed(self):
        assert Triple(BlankNode("b"), P, O).subject == BlankNode("b")

    def test_literal_subject_rejected(self):
        with pytest.raises(TermError):
            Triple(Literal("Amy"), P, O)

    def test_blank_predicate_rejected(self):
        with pytest.raises(TermError):
            Triple(S, BlankNode("b"), O)

    def test_literal_predicate_rejected(self):
        with pytest.raises(TermError):
            Triple(S, Literal("p"), O)

    def test_equality_and_hash(self):
        assert Triple(S, P, O) == Triple(S, P, O)
        assert hash(Triple(S, P, O)) == hash(Triple(S, P, O))
        assert Triple(S, P, O) != Triple(O, P, S)

    def test_unpacking(self):
        s, p, o = Triple(S, P, O)
        assert (s, p, o) == (S, P, O)

    def test_in_graph(self):
        quad = Triple(S, P, O).in_graph(G)
        assert quad == Quad(S, P, O, G)

    def test_immutable(self):
        triple = Triple(S, P, O)
        with pytest.raises(AttributeError):
            triple.subject = O


class TestQuad:
    def test_default_graph(self):
        quad = Quad(S, P, O)
        assert quad.graph is None
        assert quad.is_default_graph()

    def test_named_graph(self):
        quad = Quad(S, P, O, G)
        assert quad.graph == G
        assert not quad.is_default_graph()

    def test_graph_must_be_iri_or_blank(self):
        with pytest.raises(TermError):
            Quad(S, P, O, Literal("g"))

    def test_blank_graph_allowed(self):
        assert Quad(S, P, O, BlankNode("g")).graph == BlankNode("g")

    def test_triple_projection(self):
        assert Quad(S, P, O, G).triple() == Triple(S, P, O)

    def test_equality_includes_graph(self):
        assert Quad(S, P, O, G) != Quad(S, P, O)
        assert Quad(S, P, O, G) == Quad(S, P, O, G)

    def test_quad_not_equal_to_triple(self):
        assert Quad(S, P, O) != Triple(S, P, O)

    def test_unpacking(self):
        s, p, o, g = Quad(S, P, O, G)
        assert (s, p, o, g) == (S, P, O, G)
