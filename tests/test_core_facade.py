"""Tests for the PropertyGraphRdfStore facade, incl. Table 4 partitioning."""

import pytest

from repro.core import (
    MODEL_NG,
    MODEL_RF,
    MODEL_SP,
    PropertyGraphRdfStore,
)
from repro.core.transform import (
    PARTITION_EDGE_KV,
    PARTITION_NODE_KV,
    PARTITION_TOPOLOGY,
)
from repro.propertygraph import PropertyGraph


@pytest.fixture
def graph():
    g = PropertyGraph("g")
    g.add_vertex(1, {"name": "Amy"})
    g.add_vertex(2, {"name": "Mira"})
    g.add_edge(1, "follows", 2, {"since": 2007}, edge_id=3)
    return g


class TestLoading:
    def test_load_counts_by_partition_ng(self, graph):
        store = PropertyGraphRdfStore(model=MODEL_NG)
        counts = store.load(graph)
        assert counts == {
            PARTITION_TOPOLOGY: 1,
            PARTITION_EDGE_KV: 1,
            PARTITION_NODE_KV: 2,
        }

    def test_load_counts_by_partition_sp(self, graph):
        store = PropertyGraphRdfStore(model=MODEL_SP)
        counts = store.load(graph)
        assert counts[PARTITION_TOPOLOGY] == 1
        assert counts[PARTITION_EDGE_KV] == 3  # -s-e-o, -e-sPO-p, KV

    def test_default_indexes_per_model(self, graph):
        ng = PropertyGraphRdfStore(model=MODEL_NG)
        sp = PropertyGraphRdfStore(model=MODEL_SP)
        assert "GSPC" in [s for s in ng.network.model("pg").index_specs]
        assert "GSPC" not in [s for s in sp.network.model("pg").index_specs]

    def test_quads_roundtrip(self, graph):
        store = PropertyGraphRdfStore(model=MODEL_NG)
        store.load(graph)
        rebuilt = store.to_property_graph()
        assert rebuilt.vertex_count == 2
        assert rebuilt.edge(3).get_property("since") == 2007

    def test_cardinalities_match_prediction(self, graph):
        for model in (MODEL_RF, MODEL_NG, MODEL_SP):
            store = PropertyGraphRdfStore(model=model)
            store.load(graph)
            measured = store.cardinalities()
            predicted = store.predicted_cardinalities(graph)
            assert measured.total_quads == predicted.total_quads, model

    def test_storage_report(self, graph):
        store = PropertyGraphRdfStore(model=MODEL_NG)
        store.load(graph)
        report = store.storage_report()
        assert report.total > 0
        assert set(report.indexes) == {"PCSG", "PSCG", "SPCG", "GSPC"}


class TestQuerying:
    def test_select_via_builder(self, graph):
        store = PropertyGraphRdfStore(model=MODEL_NG)
        store.load(graph)
        result = store.select(store.queries.q3_node_kvs("name", "Amy"))
        assert len(result) == 1

    def test_update(self, graph):
        store = PropertyGraphRdfStore(model=MODEL_NG)
        store.load(graph)
        counts = store.update('INSERT DATA { <http://pg/v1> <http://pg/k/city> "NYC" }')
        assert counts["inserted"] == 1
        assert store.ask('ASK { <http://pg/v1> <http://pg/k/city> "NYC" }')

    def test_explain(self, graph):
        store = PropertyGraphRdfStore(model=MODEL_NG)
        store.load(graph)
        lines = store.explain(store.queries.q1_triangles())
        assert len(lines) == 3


class TestPartitionedStore:
    def test_partition_models_created(self, graph):
        store = PropertyGraphRdfStore(model=MODEL_NG, partitioned=True)
        store.load(graph)
        assert set(store.network.model_names) == {
            PARTITION_TOPOLOGY, PARTITION_EDGE_KV, PARTITION_NODE_KV,
        }
        assert set(store.network.virtual_model_names) == {
            "edges_with_kvs", "nodes_with_kvs", "all",
        }

    def test_partition_sizes(self, graph):
        store = PropertyGraphRdfStore(model=MODEL_NG, partitioned=True)
        store.load(graph)
        assert len(store.network.model(PARTITION_TOPOLOGY)) == 1
        assert len(store.network.model(PARTITION_EDGE_KV)) == 1
        assert len(store.network.model(PARTITION_NODE_KV)) == 2

    def test_query_routing_table4(self, graph):
        store = PropertyGraphRdfStore(model=MODEL_NG, partitioned=True)
        store.load(graph)
        assert store.model_for_query_type("edge_traversal") == PARTITION_TOPOLOGY
        assert store.model_for_query_type("edge_with_kvs") == "edges_with_kvs"
        assert store.model_for_query_type("node_kv") == "nodes_with_kvs"
        with pytest.raises(ValueError):
            store.model_for_query_type("bogus")

    def test_edge_traversal_against_topology_partition(self, graph):
        store = PropertyGraphRdfStore(model=MODEL_NG, partitioned=True)
        store.load(graph)
        result = store.select(
            "SELECT ?x ?y WHERE { ?x r:follows ?y }",
            model=store.model_for_query_type("edge_traversal"),
        )
        assert len(result) == 1

    def test_edge_kv_query_against_virtual_model(self, graph):
        store = PropertyGraphRdfStore(model=MODEL_NG, partitioned=True)
        store.load(graph)
        result = store.select(
            store.queries.q2_edges_with_kvs("follows"),
            model=store.model_for_query_type("edge_with_kvs"),
        )
        assert len(result) == 1

    def test_partitioned_results_match_unpartitioned(self, graph):
        flat = PropertyGraphRdfStore(model=MODEL_SP)
        flat.load(graph)
        part = PropertyGraphRdfStore(model=MODEL_SP, partitioned=True)
        part.load(graph)
        query = flat.queries.q2_edges_with_kvs("follows")
        flat_rows = sorted(map(repr, flat.select(query).rows))
        part_rows = sorted(map(repr, part.select(query).rows))
        assert flat_rows == part_rows

    def test_partitioned_update_requires_target(self, graph):
        store = PropertyGraphRdfStore(model=MODEL_NG, partitioned=True)
        store.load(graph)
        with pytest.raises(ValueError):
            store.update("INSERT DATA { <http://pg/v9> <http://pg/k/x> '1' }")
        counts = store.update(
            "INSERT DATA { <http://pg/v9> <http://pg/k/x> '1' }",
            model=PARTITION_NODE_KV,
        )
        assert counts["inserted"] == 1

    def test_roundtrip_from_partitioned(self, graph):
        store = PropertyGraphRdfStore(model=MODEL_NG, partitioned=True)
        store.load(graph)
        rebuilt = store.to_property_graph()
        assert rebuilt.edge_count == 1


class TestEntailment:
    def test_materialize_entailment_default_rules(self, graph):
        store = PropertyGraphRdfStore(model=MODEL_SP)
        store.load(graph)
        count = store.materialize_entailment()
        # rdfs7 re-derives nothing new for -s-p-o (already explicit),
        # but rdfs5-style derivations may appear; count is >= 0 and the
        # virtual model answers queries.
        assert count >= 0
        result = store.select(
            "SELECT ?x WHERE { ?x r:follows ?y }", model="data+entailed"
        )
        assert len(result) == 1

    def test_entailment_with_ontology_mapping(self, graph):
        from repro.rdf import IRI, OWL, Quad

        store = PropertyGraphRdfStore(model=MODEL_NG)
        store.load(graph)
        # Map the generated rel:follows onto a domain ontology property
        # via owl:equivalentProperty (the paper's Section 5.2 use case).
        foaf_knows = IRI("http://xmlns.com/foaf/0.1/knows")
        mapping = [
            Quad(store.vocabulary.label_iri("follows"),
                 OWL.equivalentProperty, foaf_knows),
        ]
        count = store.materialize_entailment(extra_quads=mapping)
        assert count >= 1
        result = store.select(
            "SELECT ?x WHERE { ?x <http://xmlns.com/foaf/0.1/knows> ?y }",
            model="data+entailed",
        )
        assert len(result) == 1

    def test_entailment_idempotent_model_creation(self, graph):
        store = PropertyGraphRdfStore(model=MODEL_NG)
        store.load(graph)
        store.materialize_entailment()
        store.materialize_entailment()  # second call reuses the models
        assert "entailed" in store.network.model_names

    def test_entailment_on_partitioned_store(self, graph):
        store = PropertyGraphRdfStore(model=MODEL_NG, partitioned=True)
        store.load(graph)
        store.materialize_entailment()
        result = store.select(
            "SELECT ?x WHERE { ?x r:follows ?y }", model="data+entailed"
        )
        assert len(result) == 1


class TestHybridTraversal:
    def test_traversal_over_stored_graph(self, graph):
        store = PropertyGraphRdfStore(model=MODEL_NG)
        store.load(graph)
        ids = store.traversal().vertices().has("name", "Amy").out("follows").ids()
        assert ids == [2]

    def test_traversal_cache_invalidated_by_update(self, graph):
        store = PropertyGraphRdfStore(model=MODEL_NG)
        store.load(graph)
        assert store.traversal().vertices().count() == 2
        store.update(
            'INSERT DATA { <http://pg/v9> <http://pg/k/name> "Zed" }'
        )
        assert store.traversal().vertices().count() == 3

    def test_traversal_cache_reused(self, graph):
        store = PropertyGraphRdfStore(model=MODEL_NG)
        store.load(graph)
        first = store.traversal()
        second = store.traversal()
        assert first._graph is second._graph
