"""Unit tests for semantic network indexes."""

import pytest

from repro.store import IndexSpecError, SemanticIndex
from repro.store.index import normalize_spec

QUADS = [
    (1, 10, 2, 0),
    (1, 10, 3, 0),
    (2, 10, 3, 5),
    (2, 11, 1, 5),
    (3, 11, 1, 6),
]


def build(spec):
    index = SemanticIndex(spec)
    index.bulk_build(QUADS)
    return index


class TestSpecNormalization:
    def test_trailing_m_dropped(self):
        assert normalize_spec("PCSGM") == "PCSG"
        assert normalize_spec("pscgm") == "PSCG"

    def test_partial_specs_allowed(self):
        assert normalize_spec("PC") == "PC"

    @pytest.mark.parametrize("bad", ["", "M", "PXSG", "PPSG", "SPCGX"])
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(IndexSpecError):
            normalize_spec(bad)

    @pytest.mark.parametrize("bad", ["SSP", "SSPM", "PCCG", "PCSGG"])
    def test_duplicate_key_letters_rejected(self, bad):
        with pytest.raises(IndexSpecError, match="duplicate index key"):
            normalize_spec(bad)

    @pytest.mark.parametrize("bad", ["PCSGMM", "SMP", "MM", "MPC"])
    def test_misplaced_m_gets_precise_error(self, bad):
        """M may appear once, trailing only; the error says exactly that
        (regression: these used to raise the generic invalid-letter
        message, hiding what was wrong with the spec)."""
        with pytest.raises(IndexSpecError, match="misplaced 'M'"):
            normalize_spec(bad)


class TestRangeScan:
    def test_full_scan_returns_all(self):
        index = build("PCSG")
        assert sorted(index.range_scan((None, None, None, None))) == sorted(QUADS)

    def test_prefix_scan_on_predicate(self):
        index = build("PCSG")
        result = list(index.range_scan((None, 10, None, None)))
        assert sorted(result) == sorted(q for q in QUADS if q[1] == 10)

    def test_prefix_scan_two_columns(self):
        index = build("PCSG")
        result = list(index.range_scan((None, 10, 3, None)))
        assert sorted(result) == [(1, 10, 3, 0), (2, 10, 3, 5)]

    def test_residual_filter_applied(self):
        # PCSG index, pattern binds P and G: G is not a usable prefix
        # column (S intervenes) so it must be filtered, not ranged.
        index = build("PCSG")
        result = list(index.range_scan((None, 10, None, 5)))
        assert result == [(2, 10, 3, 5)]

    def test_graph_leading_index(self):
        index = build("GSPC")
        result = list(index.range_scan((None, None, None, 5)))
        assert sorted(result) == [(2, 10, 3, 5), (2, 11, 1, 5)]

    def test_scan_yields_canonical_order_tuples(self):
        index = build("GSPC")
        for quad in index.range_scan((None, None, None, None)):
            assert quad in QUADS

    def test_partial_spec_index(self):
        index = build("PC")
        result = list(index.range_scan((None, 11, 1, None)))
        assert sorted(result) == [(2, 11, 1, 5), (3, 11, 1, 6)]

    def test_empty_scan(self):
        index = build("PCSG")
        assert list(index.range_scan((None, 99, None, None))) == []


class TestPrefixLength:
    def test_prefix_length(self):
        index = SemanticIndex("PCSG")
        assert index.prefix_length((None, 10, None, None)) == 1
        assert index.prefix_length((None, 10, 3, None)) == 2
        assert index.prefix_length((1, 10, 3, None)) == 3
        assert index.prefix_length((1, None, 3, None)) == 0
        assert index.prefix_length((1, 10, 3, 0)) == 4

    def test_count_prefix(self):
        index = build("PCSG")
        assert index.count_prefix((None, 10, None, None)) == 3
        assert index.count_prefix((None, None, None, None)) == len(QUADS)
        assert index.count_prefix((None, 99, None, None)) == 0


class TestDml:
    def test_insert_then_scan(self):
        index = build("PCSG")
        index.insert((9, 10, 9, 0))
        assert (9, 10, 9, 0) in list(index.range_scan((None, 10, None, None)))

    def test_delete(self):
        index = build("PCSG")
        index.delete((1, 10, 2, 0))
        assert (1, 10, 2, 0) not in list(index.range_scan((None, None, None, None)))
        assert len(index) == len(QUADS) - 1

    def test_delete_missing_is_noop(self):
        index = build("PCSG")
        index.delete((99, 99, 99, 99))
        assert len(index) == len(QUADS)


class TestStorage:
    def test_compression_reflects_shared_prefixes(self):
        clustered = SemanticIndex("PCSG")
        clustered.bulk_build([(s, 1, 1, 0) for s in range(100)])
        scattered = SemanticIndex("PCSG")
        scattered.bulk_build([(s, s + 1000, s + 2000, 0) for s in range(100)])
        assert clustered.storage_bytes() < scattered.storage_bytes()

    def test_empty_index_is_free(self):
        assert SemanticIndex("PCSG").storage_bytes() == 0
