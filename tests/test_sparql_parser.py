"""Unit tests for the SPARQL parser."""

import pytest

from repro.rdf import IRI, Literal, RDF, XSD
from repro.sparql.ast import (
    AggregateExpr,
    AskQuery,
    BindPattern,
    CompareExpr,
    ConstructQuery,
    FilterPattern,
    FunctionExpr,
    GraphGraphPattern,
    InsertDataUpdate,
    ModifyUpdate,
    OptionalPattern,
    OrderCondition,
    PathAlternative,
    PathInverse,
    PathRepeat,
    PathSequence,
    SelectQuery,
    SubSelectPattern,
    TriplePattern,
    UnionPattern,
    ValuesPattern,
    VarExpr,
)
from repro.sparql.errors import ParseError
from repro.sparql.parser import Parser

P = Parser(prefixes={"ex": "http://ex/", "rel": "http://pg/r/", "key": "http://pg/k/"})


def parse(text):
    return P.parse_query(text)


class TestSelectBasics:
    def test_simple_select(self):
        q = parse("SELECT ?x WHERE { ?x ex:p ?y }")
        assert isinstance(q, SelectQuery)
        assert q.projections[0].var == "x"
        pattern = q.where.elements[0]
        assert pattern == TriplePattern("x", IRI("http://ex/p"), "y")

    def test_select_star(self):
        q = parse("SELECT * WHERE { ?x ?p ?y }")
        assert q.is_star()

    def test_distinct(self):
        assert parse("SELECT DISTINCT ?x WHERE { ?x ex:p ?y }").distinct

    def test_where_keyword_optional(self):
        q = parse("SELECT ?x { ?x ex:p ?y }")
        assert len(q.where.elements) == 1

    def test_prefix_declaration(self):
        q = Parser().parse_query(
            "PREFIX foo: <http://foo/> SELECT ?x WHERE { ?x foo:p ?y }"
        )
        assert q.where.elements[0].predicate == IRI("http://foo/p")

    def test_undeclared_prefix_raises(self):
        with pytest.raises(ParseError):
            Parser().parse_query("SELECT ?x WHERE { ?x nope:p ?y }")

    def test_well_known_prefixes_available(self):
        q = Parser().parse_query("SELECT ?x WHERE { ?x rdf:type ?y }")
        assert q.where.elements[0].predicate == RDF.type

    def test_a_keyword(self):
        q = parse("SELECT ?x WHERE { ?x a ex:Person }")
        assert q.where.elements[0].predicate == RDF.type

    def test_semicolon_and_comma(self):
        q = parse("SELECT ?x WHERE { ?x ex:p ?a , ?b ; ex:q ?c . }")
        patterns = q.where.elements
        assert len(patterns) == 3
        assert patterns[0].object == "a"
        assert patterns[1].object == "b"
        assert patterns[2].predicate == IRI("http://ex/q")

    def test_typed_literal_object(self):
        q = parse('SELECT ?x WHERE { ?x ex:age "23"^^xsd:int }')
        assert q.where.elements[0].object == Literal("23", XSD.int)

    def test_numeric_literals(self):
        q = parse("SELECT ?x WHERE { ?x ex:age 23 }")
        assert q.where.elements[0].object == Literal("23", XSD.integer)

    def test_boolean_literal(self):
        q = parse("SELECT ?x WHERE { ?x ex:ok true }")
        assert q.where.elements[0].object == Literal("true", XSD.boolean)

    def test_blank_node_becomes_variable(self):
        q = parse("SELECT ?x WHERE { _:b ex:p ?x }")
        assert q.where.elements[0].subject == "_:b"

    def test_projection_expression(self):
        q = parse("SELECT (COUNT(*) AS ?cnt) WHERE { ?x ex:p ?y }")
        assert q.projections[0].var == "cnt"
        assert isinstance(q.projections[0].expression, AggregateExpr)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT ?x WHERE { ?x ex:p ?y } garbage")


class TestPatterns:
    def test_filter(self):
        q = parse("SELECT ?x WHERE { ?x ex:p ?y FILTER (?y > 5) }")
        filters = [e for e in q.where.elements if isinstance(e, FilterPattern)]
        assert len(filters) == 1
        assert isinstance(filters[0].expression, CompareExpr)

    def test_filter_function_no_parens(self):
        q = parse("SELECT ?x WHERE { ?x ex:p ?y FILTER isLiteral(?y) }")
        (f,) = [e for e in q.where.elements if isinstance(e, FilterPattern)]
        assert isinstance(f.expression, FunctionExpr)
        assert f.expression.name == "ISLITERAL"

    def test_optional(self):
        q = parse("SELECT ?x WHERE { ?x ex:p ?y OPTIONAL { ?y ex:q ?z } }")
        assert any(isinstance(e, OptionalPattern) for e in q.where.elements)

    def test_union(self):
        q = parse("SELECT ?x WHERE { { ?x ex:p ?y } UNION { ?x ex:q ?y } }")
        (u,) = q.where.elements
        assert isinstance(u, UnionPattern)
        assert len(u.branches) == 2

    def test_three_way_union(self):
        q = parse(
            "SELECT ?x WHERE { { ?x ex:p ?y } UNION { ?x ex:q ?y } "
            "UNION { ?x ex:r ?y } }"
        )
        assert len(q.where.elements[0].branches) == 3

    def test_graph_with_variable(self):
        q = parse("SELECT ?x WHERE { GRAPH ?g { ?x ex:p ?y } }")
        (g,) = q.where.elements
        assert isinstance(g, GraphGraphPattern)
        assert g.graph == "g"

    def test_graph_with_iri(self):
        q = parse("SELECT ?x WHERE { GRAPH ex:g1 { ?x ex:p ?y } }")
        assert q.where.elements[0].graph == IRI("http://ex/g1")

    def test_bind(self):
        q = parse("SELECT ?x WHERE { ?x ex:p ?y BIND(?y + 1 AS ?z) }")
        assert any(isinstance(e, BindPattern) for e in q.where.elements)

    def test_values_single_var(self):
        q = parse('SELECT ?x WHERE { VALUES ?x { ex:a ex:b } ?x ex:p ?y }')
        (values, _) = q.where.elements
        assert isinstance(values, ValuesPattern)
        assert len(values.rows) == 2

    def test_values_multi_var(self):
        q = parse(
            "SELECT ?x WHERE { VALUES (?x ?y) { (ex:a 1) (ex:b UNDEF) } }"
        )
        values = q.where.elements[0]
        assert values.variables == ("x", "y")
        assert values.rows[1][1] is None

    def test_subquery(self):
        q = parse(
            "SELECT ?x WHERE { { SELECT ?x WHERE { ?x ex:p ?y } LIMIT 3 } }"
        )
        (element,) = q.where.elements
        # `{ { SELECT ... } }` nests the subselect in an inner group.
        sub = element.elements[0] if not isinstance(element, SubSelectPattern) else element
        assert isinstance(sub, SubSelectPattern)
        assert sub.query.limit == 3


class TestPaths:
    def test_sequence_path(self):
        q = parse("SELECT ?x WHERE { ?x ex:p/ex:q ?y }")
        path = q.where.elements[0].predicate
        assert isinstance(path, PathSequence)
        assert len(path.steps) == 2

    def test_alternative_path(self):
        q = parse("SELECT ?x WHERE { ?x (ex:p|ex:q) ?y }")
        path = q.where.elements[0].predicate
        assert isinstance(path, PathAlternative)

    def test_inverse_path(self):
        q = parse("SELECT ?x WHERE { ?x ^ex:p ?y }")
        assert isinstance(q.where.elements[0].predicate, PathInverse)

    def test_star_path(self):
        q = parse("SELECT ?x WHERE { ?x ex:p* ?y }")
        path = q.where.elements[0].predicate
        assert isinstance(path, PathRepeat)
        assert path.minimum == 0 and path.unbounded

    def test_plus_path(self):
        path = parse("SELECT ?x WHERE { ?x ex:p+ ?y }").where.elements[0].predicate
        assert path.minimum == 1 and path.unbounded

    def test_question_path(self):
        path = parse("SELECT ?x WHERE { ?x ex:p? ?y }").where.elements[0].predicate
        assert path.minimum == 0 and not path.unbounded

    def test_plain_iri_predicate_is_not_path(self):
        q = parse("SELECT ?x WHERE { ?x ex:p ?y }")
        assert not q.where.elements[0].predicate_is_path()

    def test_five_hop_sequence(self):
        q = parse("SELECT ?y WHERE { ex:n rel:follows/rel:follows/rel:follows"
                  "/rel:follows/rel:follows ?y }")
        path = q.where.elements[0].predicate
        assert len(path.steps) == 5


class TestSolutionModifiers:
    def test_order_by(self):
        q = parse("SELECT ?x WHERE { ?x ex:p ?y } ORDER BY DESC(?y) ?x")
        assert q.order_by[0].descending
        assert not q.order_by[1].descending

    def test_limit_offset(self):
        q = parse("SELECT ?x WHERE { ?x ex:p ?y } LIMIT 10 OFFSET 5")
        assert q.limit == 10 and q.offset == 5

    def test_group_by_with_having(self):
        q = parse(
            "SELECT ?x (COUNT(*) AS ?c) WHERE { ?x ex:p ?y } "
            "GROUP BY ?x HAVING (COUNT(*) > 2)"
        )
        assert q.group_by == (VarExpr("x"),)
        assert len(q.having) == 1

    def test_nested_group_by_query(self):
        # EQ9's shape: aggregate over a grouped subquery.
        q = parse(
            "SELECT ?inDeg (COUNT(*) AS ?cnt) WHERE { "
            "  SELECT ?n2 (COUNT(*) AS ?inDeg) WHERE { ?n1 ex:p ?n2 } "
            "  GROUP BY ?n2 } "
            "GROUP BY ?inDeg ORDER BY DESC(?inDeg)"
        )
        assert isinstance(q.where.elements[0], SubSelectPattern)
        assert q.order_by == (OrderCondition(VarExpr("inDeg"), True),)

    def test_count_distinct(self):
        q = parse("SELECT (COUNT(DISTINCT ?x) AS ?c) WHERE { ?x ex:p ?y }")
        assert q.projections[0].expression.distinct


class TestOtherForms:
    def test_ask(self):
        q = parse("ASK { ?x ex:p ?y }")
        assert isinstance(q, AskQuery)

    def test_construct(self):
        q = parse("CONSTRUCT { ?x ex:q ?y } WHERE { ?x ex:p ?y }")
        assert isinstance(q, ConstructQuery)
        assert q.template[0].predicate == IRI("http://ex/q")


class TestUpdates:
    def test_insert_data(self):
        u = P.parse_update('INSERT DATA { ex:s ex:p "v" . ex:s ex:q ex:o }')
        (op,) = u.operations
        assert isinstance(op, InsertDataUpdate)
        assert len(op.quads) == 2

    def test_insert_data_with_graph(self):
        u = P.parse_update("INSERT DATA { GRAPH ex:g { ex:s ex:p ex:o } }")
        assert u.operations[0].quads[0].graph == IRI("http://ex/g")

    def test_insert_data_rejects_variables(self):
        with pytest.raises(ParseError):
            P.parse_update("INSERT DATA { ?x ex:p ex:o }")

    def test_delete_insert_where(self):
        u = P.parse_update(
            "DELETE { ?x ex:old ?y } INSERT { ?x ex:new ?y } "
            "WHERE { ?x ex:old ?y }"
        )
        (op,) = u.operations
        assert isinstance(op, ModifyUpdate)
        assert op.delete_templates and op.insert_templates

    def test_delete_where_shorthand(self):
        u = P.parse_update("DELETE WHERE { ?x ex:p ?y }")
        (op,) = u.operations
        assert isinstance(op, ModifyUpdate)
        assert op.delete_templates and not op.insert_templates

    def test_multiple_operations(self):
        u = P.parse_update(
            "INSERT DATA { ex:a ex:p ex:b } ; DELETE DATA { ex:a ex:p ex:b }"
        )
        assert len(u.operations) == 2

    def test_empty_update_rejected(self):
        with pytest.raises(ParseError):
            P.parse_update("")


class TestSignedNumbers:
    def test_negative_integer_object(self):
        q = parse("SELECT ?x WHERE { ?x ex:score -5 }")
        assert q.where.elements[0].object == Literal("-5", XSD.integer)

    def test_positive_sign_dropped(self):
        q = parse("SELECT ?x WHERE { ?x ex:score +5 }")
        assert q.where.elements[0].object == Literal("5", XSD.integer)

    def test_negative_decimal(self):
        q = parse("SELECT ?x WHERE { ?x ex:score -2.5 }")
        assert q.where.elements[0].object == Literal("-2.5", XSD.decimal)

    def test_negative_in_values(self):
        q = parse("SELECT ?x WHERE { VALUES ?x { -1 2 } }")
        values = q.where.elements[0]
        assert values.rows[0][0].to_python() == -1
