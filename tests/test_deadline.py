"""Query deadline (timeout) behaviour: cooperative aborts everywhere."""

import time

import pytest

from repro.obs import metrics
from repro.rdf import IRI, Quad
from repro.sparql import Deadline, QueryTimeout, SparqlEngine, SparqlError
from repro.sparql.deadline import deadline_for
from repro.store import SemanticNetwork

EX = "http://ex/"


def ex(name):
    return IRI(EX + name)


@pytest.fixture(autouse=True)
def _metrics_off():
    metrics.disable()
    metrics.reset()
    yield
    metrics.disable()
    metrics.reset()


@pytest.fixture
def pathological_engine():
    """2000 quads whose 3-way cartesian product is 8e9 rows — any
    engine evaluating it to completion has failed the deadline test."""
    network = SemanticNetwork()
    network.create_model("m")
    network.bulk_load("m", [
        Quad(ex(f"s{i}"), ex("p"), ex(f"o{i % 50}")) for i in range(2000)
    ])
    return SparqlEngine(network, default_model="m")


CARTESIAN = (
    "SELECT (COUNT(*) AS ?c) WHERE { "
    "?a <http://ex/p> ?b . ?c <http://ex/p> ?d . ?e <http://ex/p> ?f }"
)


class TestDeadlineObject:
    def test_requires_positive_timeout(self):
        with pytest.raises(ValueError):
            Deadline(0)
        with pytest.raises(ValueError):
            Deadline(-1)

    def test_deadline_for_none(self):
        assert deadline_for(None) is None
        assert deadline_for(0.5).timeout == 0.5

    def test_expires(self):
        deadline = Deadline(0.01, stride=1)
        time.sleep(0.02)
        assert deadline.expired
        assert deadline.remaining() <= 0
        with pytest.raises(QueryTimeout):
            deadline.tick()

    def test_tick_strides_clock_reads(self):
        deadline = Deadline(10, stride=4)
        for _ in range(100):
            deadline.tick()  # never raises with 10s left

    def test_query_timeout_is_sparql_error(self):
        # Servers catching SparqlError for 400s must special-case the
        # timeout first; the subclass relationship is intentional.
        assert issubclass(QueryTimeout, SparqlError)
        exc = QueryTimeout(0.5, 0.7)
        assert exc.timeout == 0.5
        assert exc.elapsed == 0.7


class TestEngineTimeouts:
    def test_runaway_query_stops_within_2x(self, pathological_engine):
        start = time.perf_counter()
        with pytest.raises(QueryTimeout) as err:
            pathological_engine.query(CARTESIAN, timeout=0.3)
        elapsed = time.perf_counter() - start
        assert elapsed < 0.6, f"stopped after {elapsed:.3f}s (2x budget)"
        assert err.value.timeout == 0.3

    def test_store_usable_after_timeout(self, pathological_engine):
        with pytest.raises(QueryTimeout):
            pathological_engine.query(CARTESIAN, timeout=0.2)
        result = pathological_engine.select(
            "SELECT (COUNT(*) AS ?c) WHERE { ?a <http://ex/p> ?b }"
        )
        assert int(result.rows[0][0].lexical) == 2000
        assert pathological_engine.update(
            "INSERT DATA { <http://ex/new> <http://ex/p> <http://ex/o> }"
        )["inserted"] == 1

    def test_engine_level_default_timeout(self, pathological_engine):
        pathological_engine.timeout = 0.2
        with pytest.raises(QueryTimeout):
            pathological_engine.query(CARTESIAN)

    def test_per_call_overrides_engine_default(self, pathological_engine):
        pathological_engine.timeout = 0.1
        # A generous per-call override lets a cheap query through.
        result = pathological_engine.query(
            "SELECT (COUNT(*) AS ?c) WHERE { ?a <http://ex/p> ?b }",
            timeout=30,
        )
        assert int(result.rows[0][0].lexical) == 2000

    def test_no_timeout_runs_to_completion(self, pathological_engine):
        result = pathological_engine.select(
            "SELECT (COUNT(*) AS ?c) WHERE "
            "{ ?a <http://ex/p> ?b . FILTER(?b = <http://ex/o1>) }"
        )
        assert int(result.rows[0][0].lexical) == 40

    def test_path_query_times_out(self, pathological_engine):
        # Property-path frontier loops honour the deadline too.
        with pytest.raises(QueryTimeout):
            pathological_engine.query(
                "SELECT (COUNT(*) AS ?c) WHERE { "
                "?a (<http://ex/p>|^<http://ex/p>)* ?b . "
                "?c <http://ex/p> ?d . ?e <http://ex/p> ?f }",
                timeout=0.3,
            )

    def test_prepared_query_timeout(self, pathological_engine):
        prepared = pathological_engine.prepare(CARTESIAN)
        with pytest.raises(QueryTimeout):
            prepared.run(timeout=0.2)

    def test_timeout_metric_incremented(self, pathological_engine):
        metrics.enable()
        with pytest.raises(QueryTimeout):
            pathological_engine.query(CARTESIAN, timeout=0.2)
        assert metrics.registry().counter("query.timeouts") == 1


CARTESIAN_UPDATE = (
    "INSERT { ?a <http://ex/r> ?f } WHERE { "
    "?a <http://ex/p> ?b . ?c <http://ex/p> ?d . ?e <http://ex/p> ?f }"
)


class TestUpdateTimeouts:
    """Updates honour deadlines too — one huge INSERT WHERE must not
    stall every reader behind the writer-preference lock forever."""

    def test_runaway_update_where_times_out(self, pathological_engine):
        start = time.perf_counter()
        with pytest.raises(QueryTimeout) as err:
            pathological_engine.update(CARTESIAN_UPDATE, timeout=0.3)
        elapsed = time.perf_counter() - start
        assert elapsed < 0.6, f"stopped after {elapsed:.3f}s (2x budget)"
        assert err.value.timeout == 0.3
        # The aborted operation applied nothing...
        assert pathological_engine.ask(
            "ASK { ?a <http://ex/r> ?f }"
        ) is False
        # ...and the store (and its locks) stay fully usable.
        assert pathological_engine.update(
            "INSERT DATA { <http://ex/new> <http://ex/p> <http://ex/o> }"
        )["inserted"] == 1

    def test_engine_default_timeout_covers_updates(self, pathological_engine):
        pathological_engine.timeout = 0.2
        with pytest.raises(QueryTimeout):
            pathological_engine.update(CARTESIAN_UPDATE)

    def test_update_lock_wait_times_out(self, pathological_engine):
        # A reader holding the lock keeps the writer queued; the
        # update's deadline fires in the queue instead of waiting
        # unboundedly.
        lock = pathological_engine.network.lock
        assert lock.acquire_read()
        try:
            start = time.perf_counter()
            with pytest.raises(QueryTimeout):
                pathological_engine.update(
                    "INSERT DATA { <http://ex/a> <http://ex/p> <http://ex/b> }",
                    timeout=0.2,
                )
            assert time.perf_counter() - start < 0.4
        finally:
            lock.release_read()

    def test_update_timeout_metric_incremented(self, pathological_engine):
        metrics.enable()
        with pytest.raises(QueryTimeout):
            pathological_engine.update(CARTESIAN_UPDATE, timeout=0.2)
        assert metrics.registry().counter("query.timeouts") == 1
