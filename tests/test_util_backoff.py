"""Unit tests for repro.util backoff schedules — fake clock, no sleeping."""

import random

import pytest

from repro.util import BackoffPolicy, RetryExhausted, retry_with_backoff


class FakeClock:
    """A manually advanced monotonic clock; sleep() advances it."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


class TestBackoffPolicy:
    def test_deterministic_schedule_doubles_and_caps(self):
        policy = BackoffPolicy(base=0.1, multiplier=2.0, cap=1.0, jitter=False)
        assert list(policy.delays(7)) == [
            0.0, 0.1, 0.2, 0.4, 0.8, 1.0, 1.0
        ]

    def test_first_attempt_is_immediate(self):
        assert BackoffPolicy(jitter=True).delay(0) == 0.0

    def test_jitter_stays_within_the_exponential_envelope(self):
        policy = BackoffPolicy(
            base=0.1, multiplier=2.0, cap=1.0, rng=random.Random(7)
        )
        for attempt in range(1, 12):
            bound = min(0.1 * 2.0 ** (attempt - 1), 1.0)
            for _ in range(20):
                assert 0.0 <= policy.delay(attempt) <= bound

    def test_seeded_rng_reproduces(self):
        a = BackoffPolicy(rng=random.Random(42))
        b = BackoffPolicy(rng=random.Random(42))
        assert [a.delay(i) for i in range(8)] == [
            b.delay(i) for i in range(8)
        ]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base=-1)
        with pytest.raises(ValueError):
            BackoffPolicy(multiplier=0.5)


class TestRetryWithBackoff:
    def test_succeeds_after_transient_failures(self):
        clock = FakeClock()
        calls = []

        def flaky():
            calls.append(clock.now)
            if len(calls) < 4:
                raise OSError("transient")
            return "ok"

        result = retry_with_backoff(
            flaky,
            policy=BackoffPolicy(base=0.1, multiplier=2.0, cap=10.0,
                                 jitter=False),
            sleep=clock.sleep,
            clock=clock,
        )
        assert result == "ok"
        # Slept the deterministic schedule between the four attempts.
        assert clock.sleeps == [0.1, 0.2, 0.4]

    def test_attempts_bound_raises_retry_exhausted(self):
        clock = FakeClock()

        def always_fails():
            raise ValueError("nope")

        with pytest.raises(RetryExhausted) as info:
            retry_with_backoff(
                always_fails,
                policy=BackoffPolicy(jitter=False),
                attempts=3,
                sleep=clock.sleep,
                clock=clock,
            )
        assert isinstance(info.value.last_error, ValueError)
        assert len(clock.sleeps) == 2  # no sleep after the final attempt

    def test_deadline_refuses_sleeps_that_would_overrun(self):
        clock = FakeClock()

        def always_fails():
            raise OSError("down")

        with pytest.raises(RetryExhausted):
            retry_with_backoff(
                always_fails,
                policy=BackoffPolicy(base=1.0, multiplier=2.0, cap=60.0,
                                     jitter=False),
                deadline=4.0,
                sleep=clock.sleep,
                clock=clock,
            )
        # Schedule wants 1, 2, 4, ... — the 4s sleep would start at
        # t=3 and overrun the 4s budget, so it is never started.
        assert clock.sleeps == [1.0, 2.0]
        assert clock.now <= 4.0

    def test_deadline_zero_never_sleeps_but_tries_once(self):
        clock = FakeClock()
        attempts = []

        def fails():
            attempts.append(1)
            raise OSError("down")

        with pytest.raises(RetryExhausted):
            retry_with_backoff(
                fails,
                policy=BackoffPolicy(base=1.0, jitter=False),
                deadline=0.5,
                sleep=clock.sleep,
                clock=clock,
            )
        assert attempts == [1]  # the immediate attempt ran
        assert clock.sleeps == []

    def test_non_retryable_exception_propagates(self):
        def raises_type_error():
            raise TypeError("bug, not weather")

        with pytest.raises(TypeError):
            retry_with_backoff(
                raises_type_error,
                retry_on=(OSError,),
                sleep=lambda s: None,
            )

    def test_should_stop_abandons_promptly(self):
        clock = FakeClock()
        state = {"calls": 0}

        def fails():
            state["calls"] += 1
            raise OSError("down")

        with pytest.raises(RetryExhausted):
            retry_with_backoff(
                fails,
                policy=BackoffPolicy(base=0.1, jitter=False),
                should_stop=lambda: state["calls"] >= 2,
                sleep=clock.sleep,
                clock=clock,
            )
        assert state["calls"] == 2
