"""Evaluator tests: SPARQL Update."""

import pytest

from repro.rdf import IRI, Literal, Quad
from repro.store import SemanticNetwork
from repro.sparql import SparqlEngine

EX = "http://ex/"


def ex(name):
    return IRI(EX + name)


@pytest.fixture
def engine():
    net = SemanticNetwork()
    net.create_model("m")
    net.bulk_load(
        "m",
        [
            Quad(ex("a"), ex("old"), ex("b")),
            Quad(ex("b"), ex("old"), ex("c")),
            Quad(ex("a"), ex("name"), Literal("A")),
        ],
    )
    return SparqlEngine(net, prefixes={"ex": EX}, default_model="m")


class TestInsertDeleteData:
    def test_insert_data(self, engine):
        counts = engine.update('INSERT DATA { ex:x ex:name "X" }')
        assert counts == {"inserted": 1, "deleted": 0}
        assert engine.ask('ASK { ex:x ex:name "X" }')

    def test_insert_data_into_named_graph(self, engine):
        engine.update("INSERT DATA { GRAPH ex:g { ex:x ex:p ex:y } }")
        assert engine.ask("ASK { GRAPH ex:g { ex:x ex:p ex:y } }")

    def test_insert_duplicate_not_counted(self, engine):
        engine.update("INSERT DATA { ex:n ex:p ex:o }")
        counts = engine.update("INSERT DATA { ex:n ex:p ex:o }")
        assert counts["inserted"] == 0

    def test_delete_data(self, engine):
        counts = engine.update("DELETE DATA { ex:a ex:old ex:b }")
        assert counts["deleted"] == 1
        assert not engine.ask("ASK { ex:a ex:old ex:b }")

    def test_delete_missing_data(self, engine):
        counts = engine.update("DELETE DATA { ex:zz ex:old ex:b }")
        assert counts["deleted"] == 0


class TestModify:
    def test_delete_insert_where(self, engine):
        counts = engine.update(
            "DELETE { ?x ex:old ?y } INSERT { ?x ex:new ?y } "
            "WHERE { ?x ex:old ?y }"
        )
        assert counts == {"inserted": 2, "deleted": 2}
        assert not engine.ask("ASK { ?x ex:old ?y }")
        assert engine.ask("ASK { ex:a ex:new ex:b }")

    def test_delete_where_shorthand(self, engine):
        engine.update("DELETE WHERE { ?x ex:old ?y }")
        assert not engine.ask("ASK { ?x ex:old ?y }")

    def test_insert_only_where(self, engine):
        engine.update(
            'INSERT { ?x ex:label "node" } WHERE { ?x ex:old ?y }'
        )
        result = engine.select("SELECT ?x WHERE { ?x ex:label ?l }")
        assert len(result) == 2

    def test_where_with_filter(self, engine):
        engine.update(
            "DELETE { ?x ex:old ?y } WHERE { ?x ex:old ?y "
            "FILTER (?x = ex:a) }"
        )
        assert not engine.ask("ASK { ex:a ex:old ?y }")
        assert engine.ask("ASK { ex:b ex:old ?y }")

    def test_update_locating_cost_is_query_shaped(self, engine):
        # The paper: "time taken to locate existing quads to delete ...
        # is tied to query performance."  Behavioural check: a modify
        # whose WHERE matches nothing deletes nothing.
        counts = engine.update(
            "DELETE { ?x ex:old ?y } WHERE { ?x ex:old ?y . ?x ex:nope ?z }"
        )
        assert counts == {"inserted": 0, "deleted": 0}


class TestClear:
    def test_clear_all(self, engine):
        counts = engine.update("CLEAR ALL")
        assert counts["deleted"] == 3
        assert not engine.ask("ASK { ?s ?p ?o }")

    def test_clear_graph(self, engine):
        engine.update("INSERT DATA { GRAPH ex:g { ex:x ex:p ex:y } }")
        counts = engine.update("CLEAR GRAPH ex:g")
        assert counts["deleted"] == 1
        assert engine.ask("ASK { ex:a ex:name ?n }")

    def test_clear_unknown_graph(self, engine):
        assert engine.update("CLEAR GRAPH ex:missing")["deleted"] == 0


class TestSequences:
    def test_sequence_of_operations(self, engine):
        counts = engine.update(
            "INSERT DATA { ex:t ex:p ex:u } ; DELETE DATA { ex:t ex:p ex:u }"
        )
        assert counts == {"inserted": 1, "deleted": 1}
        assert not engine.ask("ASK { ex:t ex:p ex:u }")

    def test_update_on_virtual_model_rejected(self, engine):
        from repro.store import StoreError

        engine.network.create_virtual_model("v", ["m"])
        with pytest.raises(StoreError):
            engine.update("INSERT DATA { ex:q ex:p ex:r }", model="v")


class TestGraphVariableTemplates:
    def test_modify_with_graph_variable_templates(self):
        """The NG edge-KV rename idiom: DELETE/INSERT inside GRAPH ?e."""
        from repro import PropertyGraph, PropertyGraphRdfStore

        graph = PropertyGraph()
        graph.add_vertex(1)
        graph.add_vertex(2)
        graph.add_edge(1, "follows", 2, {"since": 2007}, edge_id=3)
        store = PropertyGraphRdfStore(model="NG")
        store.load(graph)
        counts = store.update(
            "DELETE { GRAPH ?e { ?e <http://pg/k/since> ?y } } "
            "INSERT { GRAPH ?e { ?e <http://pg/k/sinceYear> ?y } } "
            "WHERE { GRAPH ?e { ?e <http://pg/k/since> ?y } }"
        )
        assert counts == {"inserted": 1, "deleted": 1}
        # The rewritten KV stays inside the edge's named graph, so the
        # NG round trip still decodes.
        rebuilt = store.to_property_graph()
        assert rebuilt.edge(3).get_property("sinceYear") == 2007
        assert rebuilt.edge(3).get_property("since") is None
