"""Chaos schedules for replication: wire faults, kill/restart loops.

Every schedule asserts the same invariant: the follower either
**converges** to the leader's exact state (digest-equal) or
**fail-stops** and reconnects — it never silently diverges.  Run with
``pytest -m chaos``.
"""

import time

import pytest

from repro.rdf import IRI, Quad
from repro.store.durable import open_durable
from repro.store.replication import (
    ReplicationFollower,
    ReplicationLeader,
    state_digest,
)
from repro.testing.faults import ChaosProxy

pytestmark = pytest.mark.chaos

EX = "http://ex/"


def quad(n):
    return Quad(IRI(f"{EX}s{n}"), IRI(f"{EX}p"), IRI(f"{EX}o{n}"))


def converge(leader_net, follower_net, timeout=20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if (
            follower_net.data_version >= leader_net.data_version
            and follower_net.applied_seq >= leader_net.applied_seq
        ):
            break
        time.sleep(0.01)
    assert follower_net.data_version == leader_net.data_version, (
        f"no convergence: follower v{follower_net.data_version} "
        f"vs leader v{leader_net.data_version}"
    )
    assert state_digest(follower_net.snapshot()) == state_digest(
        leader_net.snapshot()
    ), "SILENT DIVERGENCE: versions equal but state digests differ"


@pytest.fixture
def cluster(tmp_path):
    """Leader + proxy + follower, with fast reconnect backoff."""
    from repro.util import BackoffPolicy

    leader_net = open_durable(str(tmp_path / "leader"))
    leader_net.create_model("m")
    leader = ReplicationLeader(leader_net, heartbeat_interval=0.05).start()
    proxy = ChaosProxy(leader.address).start()
    follower_net = open_durable(str(tmp_path / "follower"))
    follower = ReplicationFollower(
        follower_net,
        *proxy.address,
        backoff=BackoffPolicy(base=0.01, cap=0.1),
    ).start()
    yield leader_net, leader, proxy, follower_net, follower
    follower.stop()
    follower_net.close()
    proxy.stop()
    leader.stop()
    leader_net.close()


class TestWireFaults:
    def test_cut_wire_mid_storm_reconnects_and_converges(self, cluster):
        leader_net, leader, proxy, follower_net, follower = cluster
        for n in range(10):
            leader_net.insert("m", quad(n))
        converge(leader_net, follower_net)
        proxy.cut()
        for n in range(10, 30):
            leader_net.insert("m", quad(n))
        converge(leader_net, follower_net)
        assert proxy.connections >= 2  # it really reconnected
        assert follower.reconnects >= 1

    def test_torn_wire_frame_fail_stops_then_converges(self, cluster):
        leader_net, leader, proxy, follower_net, follower = cluster
        for n in range(5):
            leader_net.insert("m", quad(n))
        converge(leader_net, follower_net)
        # Truncate the next leader→follower chunk mid-frame: the CRC
        # framing must reject it (fail-stop), never misparse it.
        proxy.tear_next(keep_bytes=5)
        for n in range(5, 25):
            leader_net.insert("m", quad(n))
        converge(leader_net, follower_net)
        assert proxy.tears == 1
        assert follower.reconnects >= 1

    def test_duplicated_wire_bytes_fail_stop_then_converge(self, cluster):
        leader_net, leader, proxy, follower_net, follower = cluster
        for n in range(5):
            leader_net.insert("m", quad(n))
        converge(leader_net, follower_net)
        # Raw byte duplication desynchronizes the framing; the CRC
        # check turns it into a reconnect.  (Message-level duplication
        # is absorbed by apply_replicated's sequence dedup — covered in
        # test_replication.py.)
        proxy.duplicate_next()
        for n in range(5, 25):
            leader_net.insert("m", quad(n))
        converge(leader_net, follower_net)
        assert proxy.duplicates == 1

    def test_repeated_cuts_never_diverge(self, cluster):
        leader_net, leader, proxy, follower_net, follower = cluster
        for round_no in range(5):
            for n in range(round_no * 10, round_no * 10 + 10):
                leader_net.insert("m", quad(n))
            proxy.cut()
            time.sleep(0.02)
        converge(leader_net, follower_net)
        assert follower.status()["lag_frames"] == 0


class TestProcessFaults:
    def test_kill_minus_nine_follower_mid_stream(self, tmp_path):
        """Abandon the follower without any shutdown (the in-process
        analogue of kill -9), reopen its directory, and require
        digest-equal convergence from the durable cursor."""
        leader_net = open_durable(str(tmp_path / "leader"))
        leader_net.create_model("m")
        leader = ReplicationLeader(
            leader_net, heartbeat_interval=0.05
        ).start()
        f_dir = str(tmp_path / "follower")
        f_net = open_durable(f_dir)
        follower = ReplicationFollower(f_net, *leader.address).start()
        try:
            for n in range(10):
                leader_net.insert("m", quad(n))
            deadline = time.monotonic() + 10.0
            while (
                time.monotonic() < deadline
                and f_net.applied_seq < 3
            ):
                time.sleep(0.005)
            assert f_net.applied_seq >= 3  # mid-stream, not idle
            # kill -9: no stop(), no close() — just sever and abandon.
            follower._stop.set()
            with follower._stream_lock:
                if follower._stream is not None:
                    follower._stream.close()
            for n in range(10, 20):
                leader_net.insert("m", quad(n))
            # Restart from the durable directory.
            f_net2 = open_durable(f_dir)
            follower2 = ReplicationFollower(f_net2, *leader.address).start()
            try:
                converge(leader_net, f_net2)
                assert follower2.bootstraps == 0  # resumed by sequence
            finally:
                follower2.stop()
                f_net2.close()
        finally:
            leader.stop()
            leader_net.close()

    def test_follower_killed_and_restarted_across_checkpoint(self, tmp_path):
        """Follower dies; the leader checkpoints (truncating its WAL)
        before the restart, so resume-by-offset is impossible and the
        follower must re-bootstrap — and still converge exactly."""
        leader_net = open_durable(str(tmp_path / "leader"))
        leader_net.create_model("m")
        leader = ReplicationLeader(
            leader_net, heartbeat_interval=0.05
        ).start()
        f_dir = str(tmp_path / "follower")
        f_net = open_durable(f_dir)
        follower = ReplicationFollower(f_net, *leader.address).start()
        try:
            for n in range(10):
                leader_net.insert("m", quad(n))
            converge(leader_net, f_net)
            follower.stop()
            f_net.close()
            for n in range(10, 20):
                leader_net.insert("m", quad(n))
            leader_net.checkpoint()  # WAL truncated: cursor now useless
            leader_net.insert("m", quad(99))
            f_net = open_durable(f_dir)
            follower = ReplicationFollower(f_net, *leader.address).start()
            converge(leader_net, f_net)
            assert follower.bootstraps == 1
        finally:
            follower.stop()
            f_net.close()
            leader.stop()
            leader_net.close()
