"""PGQL parser/compiler error paths, fuzzing, and the HTTP contract.

Malformed input must always surface as :class:`PgqlSyntaxError` with a
line/column position — never a raw traceback from deeper layers — and
the ``/pgql`` endpoint must turn that into a 400 with a JSON error
payload, while keeping the same staleness-token contract as
``/sparql``.
"""

import json
import random
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.core import PropertyGraphRdfStore
from repro.datasets.twitter import TwitterConfig, generate_twitter
from repro.pgql import PgqlSyntaxError, compiler_for, parse
from repro.server import SparqlServer

# ----------------------------------------------------------------------
# Lexical and grammatical errors
# ----------------------------------------------------------------------

MALFORMED = [
    "",
    "MATCH",
    "MATCH (",
    "MATCH (a",
    "MATCH (a)",  # no RETURN clause
    "MATCH (a) RETURN",
    "MATCH (a RETURN a",
    "MATCH (a:) RETURN a",
    "MATCH (a {x}) RETURN a",
    "MATCH (a {x:}) RETURN a",
    "MATCH (a)-[e]-(b) RETURN a",  # undirected edges unsupported
    "MATCH (a)-[e]->>(b) RETURN a",
    "MATCH (a)->(b) RETURN a",
    "MATCH (a)-[:]->(b) RETURN a",
    "MATCH (a) RETURN a,",
    "MATCH (a) RETURN a WHERE a.x = 1",  # WHERE after RETURN
    "MATCH (a) RETURN a ORDER a.x",
    "MATCH (a) RETURN a LIMIT x",
    "MATCH (a) RETURN a LIMIT 1 LIMIT 2",
    "MATCH (a {x: 'unterminated}) RETURN a",
    "MATCH (a {x: 'bad\\q escape'}) RETURN a",
    "MATCH (a) RETURN COUNT(a, a)",
    "MATCH (a) WHERE RETURN a",
    "MATCH (a) WHERE a.x = RETURN a",
    "MATCH (a {x: 1}) RETURN a extra",
    "MATCH (_hidden) RETURN _hidden",  # reserved namespace
    "MATCH (match) RETURN match",  # keyword as variable
    "RETURN 1",
    "SELECT ?s WHERE { ?s ?p ?o }",  # SPARQL is not PGQL
]


class TestSyntaxErrors:
    @pytest.mark.parametrize("text", MALFORMED)
    def test_malformed_input_raises_positioned_syntax_error(self, text):
        with pytest.raises(PgqlSyntaxError) as excinfo:
            parse(text)
        error = excinfo.value
        assert isinstance(error.line, int)
        assert isinstance(error.column, int)
        if error.line:
            assert f"line {error.line}" in str(error)

    def test_error_position_points_at_the_offending_token(self):
        with pytest.raises(PgqlSyntaxError) as excinfo:
            parse("MATCH (a)\n  RETURN b b")
        assert excinfo.value.line == 2

    def test_fuzzed_corruptions_never_escape_as_other_exceptions(self):
        """Deterministic mutation fuzzing: random single-edit corruptions
        of valid queries either still parse or raise PgqlSyntaxError —
        nothing else (no IndexError from the tokenizer, no KeyError from
        the parser tables)."""
        seeds = [
            "MATCH (a:Person {name: 'x'})-[e:knows]->(b) "
            "WHERE a.age > 21 RETURN a, b.name AS n ORDER BY n LIMIT 5",
            "MATCH (x)-[:a|b]->(y) RETURN x, COUNT(*) AS c GROUP BY x",
            "MATCH (n {t: true}) WITH n RETURN n",
        ]
        rng = random.Random(1729)
        alphabet = "(){}[]<>-:,.'\"|=*x9 \n"
        for _ in range(400):
            text = rng.choice(seeds)
            position = rng.randrange(len(text))
            mode = rng.randrange(3)
            if mode == 0:  # replace
                text = (
                    text[:position]
                    + rng.choice(alphabet)
                    + text[position + 1 :]
                )
            elif mode == 1:  # delete
                text = text[:position] + text[position + 1 :]
            else:  # insert
                text = text[:position] + rng.choice(alphabet) + text[position:]
            try:
                parse(text)
            except PgqlSyntaxError:
                pass


# ----------------------------------------------------------------------
# Semantic (compile-time) errors
# ----------------------------------------------------------------------

SEMANTIC = [
    # Unconstrained node: SPARQL cannot enumerate vertices that carry no
    # label, property, or incident edge.
    "MATCH (a) RETURN a",
    # Variables must be bound by the MATCH.
    "MATCH (a {x: 1}) RETURN b",
    "MATCH (a {x: 1}) WHERE b.y = 2 RETURN a",
    "MATCH (a {x: 1}) RETURN a ORDER BY b.z",
    # One edge variable per edge occurrence.
    "MATCH (a)-[e:k]->(b)-[e:k]->(c) RETURN a",
    # A name cannot be both node and edge.
    "MATCH (a)-[a:k]->(b) RETURN b",
    # Aggregates need an explicit alias to become a column.
    "MATCH (a {x: 1}) RETURN COUNT(*)",
    # properties() expands to two columns; aggregation over it is
    # undefined in this subset.
    "MATCH (a {x: 1}) RETURN properties(a), COUNT(*) AS c",
    "MATCH (a {x: 1}) RETURN properties(a) AS p",
    # Label alternation describes topology only (Table 3 rule 1a); it
    # cannot bind an edge variable or carry properties.
    "MATCH (a)-[e:k|f]->(b) RETURN a",
    "MATCH (a)-[:k|f {w: 1}]->(b) RETURN a",
    # id() comparisons must be sargable equality against an integer.
    "MATCH (a {x: 1}) WHERE id(a) = 'seven' RETURN a",
    "MATCH (a {x: 1}) WHERE id(a) < 7 RETURN a",
    # Only projected names survive a WITH boundary.
    "MATCH (a {x: 1})-[e:k]->(b) WITH a RETURN b",
    # Duplicate output columns.
    "MATCH (a {x: 1}) RETURN a, a",
    # properties(a) expands to a_key/a_value — clashing aliases are
    # duplicates too, in either order.
    "MATCH (a {x: 1}) RETURN a.x AS a_key, properties(a)",
    "MATCH (a {x: 1}) RETURN properties(a), a.x AS a_key",
]


class TestSemanticErrors:
    @pytest.mark.parametrize("text", SEMANTIC)
    @pytest.mark.parametrize("encoding", ["NG", "SP", "RF"])
    def test_compile_rejects_with_syntax_error(self, text, encoding):
        query = parse(text)
        with pytest.raises(PgqlSyntaxError):
            compiler_for(encoding).compile(query)

    def test_unknown_encoding_is_rejected(self):
        with pytest.raises(PgqlSyntaxError):
            compiler_for("XX")


# ----------------------------------------------------------------------
# HTTP contract: /pgql mirrors /sparql's error and staleness behavior
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def pgql_server():
    graph = generate_twitter(TwitterConfig(egos=2, seed=13))
    store = PropertyGraphRdfStore(model="NG")
    store.load(graph)
    with SparqlServer(store.engine) as running:
        yield running


def _get(server, path):
    request = urllib.request.Request(f"http://127.0.0.1:{server.port}{path}")
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


def _post(server, body, content_type="application/pgql-query", path="/pgql"):
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        data=body.encode("utf-8"),
        headers={"Content-Type": content_type},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


VALID = "MATCH (a)-[:follows]->(b) RETURN b"


class TestPgqlEndpoint:
    def test_post_valid_query_returns_bindings(self, pgql_server):
        status, body = _post(pgql_server, VALID)
        assert status == 200
        document = json.loads(body)
        assert document["head"]["vars"] == ["b"]
        assert document["results"]["bindings"]

    def test_get_valid_query(self, pgql_server):
        encoded = urllib.parse.quote(VALID)
        status, body = _get(pgql_server, f"/pgql?query={encoded}")
        assert status == 200
        assert json.loads(body)["results"]["bindings"]

    def test_malformed_query_is_400_with_json_error(self, pgql_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(pgql_server, "MATCH (a RETURN a")
        assert excinfo.value.code == 400
        payload = json.loads(excinfo.value.read().decode("utf-8"))
        assert "line 1" in payload["error"]

    def test_semantic_error_is_400_not_500(self, pgql_server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(pgql_server, "MATCH (a) RETURN a")
        assert excinfo.value.code == 400
        assert "error" in json.loads(excinfo.value.read().decode("utf-8"))

    def test_explain_language_pgql(self, pgql_server):
        encoded = urllib.parse.quote(VALID)
        status, body = _get(
            pgql_server, f"/explain?language=pgql&query={encoded}"
        )
        assert status == 200
        assert json.loads(body)["language"] == "pgql"

    def test_stale_read_token_applies_to_pgql(self, pgql_server):
        encoded = urllib.parse.quote(VALID)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(
                pgql_server,
                f"/pgql?query={encoded}&min-version=999999",
            )
        assert excinfo.value.code == 503
        payload = json.loads(excinfo.value.read().decode("utf-8"))
        assert payload["error"] == "StaleRead"
