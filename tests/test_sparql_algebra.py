"""Unit tests for the logical algebra and the optimizer rules.

Each rewrite rule is a pure ``Plan -> Plan`` function; these tests pin
its behaviour on hand-built plans, independent of execution.
"""

import pytest

from repro.rdf import IRI, Literal
from repro.sparql import algebra as A
from repro.sparql.ast import (
    AndExpr,
    CompareExpr,
    FunctionExpr,
    TermExpr,
    VarExpr,
)
from repro.sparql.optimize import (
    fold_constants,
    fold_expression,
    optimize,
    place_slice,
    prune_extends,
    push_filters,
)
from repro.sparql.parser import Parser

EX = "http://ex/"
_parser = Parser({"ex": EX})


def lower(query_text: str) -> A.Plan:
    return A.lower_select(_parser.parse_query(query_text))


def lower_where(query_text: str) -> A.Plan:
    return A.lower_group(_parser.parse_query(query_text).where)


def find(plan: A.Plan, kind) -> list:
    found = []

    def walk(node):
        if isinstance(node, kind):
            found.append(node)
        for child in A.children(node):
            walk(child)

    walk(plan)
    return found


# ----------------------------------------------------------------------
# Lowering
# ----------------------------------------------------------------------


class TestLowerGroup:
    def test_adjacent_patterns_form_one_bgp(self):
        plan = lower_where(
            "SELECT * WHERE { ?a ex:p ?b . ?b ex:q ?c }"
        )
        bgps = find(plan, A.BGP)
        assert len(bgps) == 1
        assert len(bgps[0].patterns) == 2
        assert bgps[0].fresh  # first flush of the group

    def test_filter_breaks_bgp_accumulation(self):
        plan = lower_where(
            "SELECT * WHERE { ?a ex:p ?b FILTER (?b > 1) ?b ex:q ?c }"
        )
        bgps = find(plan, A.BGP)
        assert len(bgps) == 2
        # Every flush starts "fresh": its first step executes even on
        # an empty input relation (the evaluator's chain_first rule).
        assert all(bgp.fresh for bgp in bgps)
        filters = find(plan, A.Filter)
        assert len(filters) == 1 and filters[0].origin == "group_end"

    def test_property_path_splits_into_path_step(self):
        plan = lower_where(
            "SELECT * WHERE { ?a ex:p ?b . ?b (ex:q)+ ?c }"
        )
        assert len(find(plan, A.PathStep)) == 1
        assert len(find(plan, A.BGP)) == 1

    def test_group_end_filters_wrap_in_syntax_order(self):
        plan = lower_where(
            "SELECT * WHERE { ?a ex:p ?b FILTER (?x = 1) FILTER (?y = 2) }"
        )
        filters = find(plan, A.Filter)
        # Outermost filter is the last one in syntax order.
        assert len(filters) == 2

    def test_optional_lowers_to_left_join(self):
        plan = lower_where(
            "SELECT * WHERE { ?a ex:p ?b OPTIONAL { ?b ex:q ?c } }"
        )
        assert len(find(plan, A.LeftJoin)) == 1

    def test_union_and_minus(self):
        plan = lower_where(
            "SELECT * WHERE { { ?a ex:p ?b } UNION { ?a ex:q ?b } "
            "MINUS { ?a ex:r ?b } }"
        )
        assert len(find(plan, A.Union)) == 1
        assert len(find(plan, A.Minus)) == 1


class TestLowerSelect:
    def test_solution_modifier_stack_order(self):
        plan = lower(
            "SELECT DISTINCT ?a WHERE { ?a ex:p ?b } "
            "ORDER BY ?a LIMIT 5 OFFSET 2"
        )
        # Slice(Distinct(Project(OrderBy(...)))) before optimization.
        assert isinstance(plan, A.Slice)
        assert plan.limit == 5 and plan.offset == 2
        assert isinstance(plan.input, A.Distinct)
        assert isinstance(plan.input.input, A.Project)
        assert isinstance(plan.input.input.input, A.OrderBy)

    def test_select_expressions_become_extends(self):
        plan = lower(
            "SELECT ?a (?b * 2 AS ?double) WHERE { ?a ex:p ?b }"
        )
        extends = find(plan, A.Extend)
        assert len(extends) == 1
        assert extends[0].var == "double"
        assert extends[0].kind == "projection"

    def test_aggregate_query_lowers_to_aggregate_node(self):
        plan = lower(
            "SELECT ?a (COUNT(?b) AS ?c) WHERE { ?a ex:p ?b } GROUP BY ?a"
        )
        assert len(find(plan, A.Aggregate)) == 1


class TestSchemaVars:
    def test_bgp_schema_and_certainty(self):
        plan = lower_where("SELECT * WHERE { ?a ex:p ?b }")
        assert A.schema_vars(plan) == frozenset({"a", "b"})
        assert A.certain_vars(plan) == frozenset({"a", "b"})

    def test_left_join_optional_vars_not_certain(self):
        plan = lower_where(
            "SELECT * WHERE { ?a ex:p ?b OPTIONAL { ?b ex:q ?c } }"
        )
        assert "c" in A.schema_vars(plan)
        assert "c" not in A.certain_vars(plan)
        assert "a" in A.certain_vars(plan)

    def test_union_certainty_is_intersection(self):
        plan = lower_where(
            "SELECT * WHERE { { ?a ex:p ?b } UNION { ?a ex:q ?c } }"
        )
        assert A.schema_vars(plan) == frozenset({"a", "b", "c"})
        assert A.certain_vars(plan) == frozenset({"a"})


# ----------------------------------------------------------------------
# Optimizer rules
# ----------------------------------------------------------------------


class TestFoldConstants:
    def test_folds_constant_arithmetic(self):
        plan = lower_where(
            "SELECT * WHERE { ?a ex:p ?b FILTER (?b > 2 + 3) }"
        )
        folded = fold_constants(plan)
        expr = find(folded, A.Filter)[0].expression
        assert isinstance(expr, CompareExpr)
        assert isinstance(expr.right, TermExpr)
        assert expr.right.term.to_python() == 5

    def test_leaves_variables_alone(self):
        plan = lower_where(
            "SELECT * WHERE { ?a ex:p ?b FILTER (?b > ?a) }"
        )
        assert fold_constants(plan) == plan

    def test_erroring_expression_left_untouched(self):
        # 1/0 raises at evaluation time; folding must not change that.
        expr = fold_expression(
            _parser.parse_query(
                "SELECT * WHERE { ?a ex:p ?b FILTER (?b > 1/0) }"
            ).where.elements[-1].expression
        )
        assert not isinstance(expr.right, TermExpr)


class TestPushFilters:
    def test_certain_filter_sinks_into_bgp(self):
        plan = lower_where(
            "SELECT * WHERE { ?a ex:p ?b . ?b ex:q ?c FILTER (?b != ?c) }"
        )
        pushed = push_filters(plan)
        assert not find(pushed, A.Filter)  # consumed into BGP.filters
        bgp = find(pushed, A.BGP)[0]
        assert len(bgp.filters) == 1

    def test_constant_equality_becomes_seed(self):
        plan = lower_where(
            "SELECT * WHERE { ?a ex:p ?b FILTER (?a = ex:alice) }"
        )
        pushed = push_filters(plan)
        bgp = find(pushed, A.BGP)[0]
        assert any(var == "a" for var, _ in bgp.seeds)
        assert not find(pushed, A.Filter)

    def test_uncertain_filter_stays_at_group_end(self):
        plan = lower_where(
            "SELECT * WHERE { ?a ex:p ?b OPTIONAL { ?b ex:q ?c } "
            "FILTER (?c > 1) }"
        )
        pushed = push_filters(plan)
        filters = find(pushed, A.Filter)
        assert len(filters) == 1
        assert filters[0].origin == "group_end"
        assert isinstance(pushed, A.Filter)  # still above the LeftJoin

    def test_exists_filter_never_pushed(self):
        plan = lower_where(
            "SELECT * WHERE { ?a ex:p ?b "
            "FILTER EXISTS { ?a ex:q ?c } }"
        )
        pushed = push_filters(plan)
        assert len(find(pushed, A.Filter)) == 1


class TestPruneExtends:
    def test_unused_bind_is_dropped(self):
        plan = lower(
            "SELECT ?a WHERE { ?a ex:p ?b BIND (?b * 2 AS ?unused) }"
        )
        pruned = prune_extends(plan)
        assert not find(pruned, A.Extend)

    def test_projected_bind_is_kept(self):
        plan = lower(
            "SELECT ?a ?d WHERE { ?a ex:p ?b BIND (?b * 2 AS ?d) }"
        )
        assert len(find(prune_extends(plan), A.Extend)) == 1

    def test_protected_vars_survive(self):
        plan = lower(
            "SELECT ?a WHERE { ?a ex:p ?b BIND (?b * 2 AS ?tpl) }"
        )
        pruned = prune_extends(plan, protected=frozenset({"tpl"}))
        assert len(find(pruned, A.Extend)) == 1

    def test_star_projection_keeps_every_bind(self):
        plan = lower(
            "SELECT * WHERE { ?a ex:p ?b BIND (?b * 2 AS ?d) }"
        )
        assert len(find(prune_extends(plan), A.Extend)) == 1


class TestPlaceSlice:
    def test_slice_pushes_through_project(self):
        plan = lower("SELECT ?a WHERE { ?a ex:p ?b } LIMIT 3")
        placed = place_slice(plan)
        assert isinstance(placed, A.Project)
        assert isinstance(placed.input, A.Slice)

    def test_slice_fuses_top_k_into_order_by(self):
        plan = lower(
            "SELECT ?a WHERE { ?a ex:p ?b } ORDER BY ?a LIMIT 3 OFFSET 1"
        )
        placed = place_slice(plan)
        order = find(placed, A.OrderBy)[0]
        assert order.top == 4  # offset + limit

    def test_distinct_blocks_slice_pushdown(self):
        plan = lower("SELECT DISTINCT ?a WHERE { ?a ex:p ?b } LIMIT 3")
        placed = place_slice(plan)
        # Slicing below Distinct would change results; Slice stays above.
        assert isinstance(placed, A.Slice)
        assert isinstance(placed.input, A.Distinct)


class TestOptimizeComposition:
    def test_rules_are_pure(self):
        plan = lower(
            "SELECT ?a WHERE { ?a ex:p ?b FILTER (?b > 1 + 1) } LIMIT 2"
        )
        before = A.render(plan)
        optimize(plan)
        assert A.render(plan) == before  # input plan untouched

    def test_end_to_end_shape(self):
        optimized = optimize(
            lower(
                "SELECT ?a WHERE { ?a ex:p ?b . ?b ex:q ?c "
                "FILTER (?c != ?a) } ORDER BY ?a LIMIT 2"
            )
        )
        order = find(optimized, A.OrderBy)[0]
        assert order.top == 2
        bgp = find(optimized, A.BGP)[0]
        assert len(bgp.filters) == 1
        assert not find(optimized, A.Filter)

    def test_filter_pushdown_flag_disables_sinking(self):
        optimized = optimize(
            lower_where(
                "SELECT * WHERE { ?a ex:p ?b FILTER (?b != ?a) }"
            ),
            filter_pushdown=False,
        )
        filters = find(optimized, A.Filter)
        assert len(filters) == 1 and filters[0].origin == "group_end"


class TestRenderRoundTrip:
    def test_to_dict_mirrors_render(self):
        plan = optimize(
            lower("SELECT ?a WHERE { ?a ex:p ?b } ORDER BY ?a LIMIT 2")
        )
        document = A.to_dict(plan)

        def labels(node):
            yield node["label"]
            for child in node.get("children", ()):
                yield from labels(child)

        rendered = A.render(plan)
        for label in labels(document):
            assert label in rendered
