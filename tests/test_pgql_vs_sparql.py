"""Differential equivalence: the PGQL EQ suite vs the SPARQL EQ suite.

The paper's Table 3 claim as a regression gate: every experiment query
EQ1-EQ12 (EQ11 at hops 1-5) expressed once in PGQL must return exactly
the same multiset of rows as its hand-written SPARQL formulation, on
both the NG and SP encodings, at batch sizes 1 and 1024.

Also pins the integration contract: PGQL plans land in the shared plan
cache under ``pgql[<encoding>]``-prefixed keys, EXPLAIN reports the
query language, and traces carry the ``pgql.parse``/``pgql.compile``
spans.
"""

from collections import Counter

import pytest

from repro.core import PropertyGraphRdfStore
from repro.core.transform import MODEL_NG, MODEL_RF, MODEL_SP
from repro.datasets.twitter import (
    TwitterConfig,
    connected_tag,
    generate_twitter,
    hub_vertex,
)
from repro.obs import trace as _trace
from repro.pgql import pgql_experiment_queries

EQ_NAMES = (
    ["EQ%d" % i for i in range(1, 11)]
    + ["EQ11%s" % letter for letter in "abcde"]
    + ["EQ12"]
)
BATCH_SIZES = (1, 1024)


@pytest.fixture(scope="module")
def dataset():
    graph = generate_twitter(TwitterConfig(egos=5, seed=13))
    return graph, connected_tag(graph), hub_vertex(graph)


def _store(dataset, model):
    graph, _, _ = dataset
    store = PropertyGraphRdfStore(model=model)
    store.load(graph)
    return store


@pytest.fixture(scope="module", params=[MODEL_NG, MODEL_SP])
def store(request, dataset):
    return _store(dataset, request.param)


@pytest.fixture(scope="module")
def suites(dataset, store):
    graph, tag, hub = dataset
    sparql = store.queries.experiment_queries(
        tag, store.vocabulary.vertex_iri(hub).value
    )
    pgql = pgql_experiment_queries(tag, hub)
    assert sorted(sparql) == sorted(pgql)
    return sparql, pgql


def _multiset(result):
    return Counter(tuple(row) for row in result.rows)


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize("name", EQ_NAMES)
    def test_pgql_equals_sparql(self, store, suites, name, batch_size):
        sparql, pgql = suites
        saved = store.engine.batch_size
        store.engine.batch_size = batch_size
        try:
            expected = _multiset(store.select(sparql[name]))
            actual = _multiset(store.pgql(pgql[name]))
        finally:
            store.engine.batch_size = saved
        assert actual == expected, (
            f"{name} on {store.model}: PGQL returned {sum(actual.values())} "
            f"rows, SPARQL {sum(expected.values())}"
        )

    def test_the_same_pgql_text_serves_every_encoding(self, dataset):
        """One PGQL query text per EQ — the compiler, not the author,
        applies the encoding-specific formulation rules (including RF,
        which has no SPARQL formulation in PgQueryBuilder)."""
        graph, tag, hub = dataset
        per_model = {}
        for model in (MODEL_NG, MODEL_SP, MODEL_RF):
            store = _store(dataset, model)
            per_model[model] = {
                name: _multiset(store.pgql(text))
                for name, text in pgql_experiment_queries(tag, hub).items()
            }
        assert per_model[MODEL_NG] == per_model[MODEL_SP] == per_model[MODEL_RF]


class TestPipelineIntegration:
    def test_pgql_plans_share_the_plan_cache(self, store, suites):
        sparql, pgql = suites
        store.engine.plan_cache.clear()
        store.pgql(pgql["EQ2"])
        before = store.engine.plan_cache.stats()
        store.pgql(pgql["EQ2"])
        after = store.engine.plan_cache.stats()
        assert after["hits"] == before["hits"] + 1
        store.select(sparql["EQ2"])
        keys = store.engine.plan_cache.keys()
        prefixes = {str(key[0]).split(" ")[0] for key in keys}
        # PGQL and SPARQL coexist, disambiguated by the key prefix.
        assert any(p.startswith("pgql[") for p in prefixes)
        assert sparql["EQ2"] in [key[0] for key in keys]

    def test_order_by_properties_column(self, store, suites):
        """The ``properties()`` expansion columns are orderable output
        names, not internal variables."""
        _, pgql = suites
        result = store.pgql(pgql["EQ4"] + " ORDER BY n_key")
        assert _multiset(result) == _multiset(store.pgql(pgql["EQ4"]))
        keys = [row[1].value for row in result.rows]
        assert keys == sorted(keys)

    def test_explain_reports_the_query_language(self, store, suites):
        _, pgql = suites
        lines = store.engine.explain_pgql_plan(pgql["EQ1"])
        assert "Query language: pgql" in lines
        document = store.engine.explain_pgql_plan(pgql["EQ1"], format="json")
        assert document["language"] == "pgql"
        assert document["form"] == "select"

    def test_trace_carries_the_pgql_spans(self, store, suites):
        _, pgql = suites
        saved = store.engine.trace
        store.engine.trace = True
        try:
            result = store.engine.pgql(pgql["EQ1"])
        finally:
            store.engine.trace = saved
        names = {span.name for span in result.stats.trace.spans}
        assert {"pgql.parse", "pgql.compile", "plan", "execute"} <= names
        assert all(
            name in _trace.PIPELINE_SPAN_NAMES
            for name in names
            if not name.startswith("op.")
        )

    def test_snapshot_invalidation_applies_to_pgql_plans(self, dataset):
        graph, tag, _ = dataset
        store = _store(dataset, MODEL_NG)
        query = f"MATCH (n {{hasTag: '{tag}'}}) RETURN n"
        first = _multiset(store.pgql(query))
        iri = store.vocabulary.vertex_iri(10 ** 6).value
        tag_iri = store.vocabulary.key_iri("hasTag").value
        store.update(
            f'INSERT DATA {{ <{iri}> <{tag_iri}> "{tag}" }}', model="pg"
        )
        second = _multiset(store.pgql(query))
        assert sum(second.values()) == sum(first.values()) + 1
