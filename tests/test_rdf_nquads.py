"""Unit tests for the N-Quads parser and serializer."""

import pytest

from repro.rdf import (
    IRI,
    BlankNode,
    Literal,
    NQuadsParseError,
    Quad,
    XSD,
    parse_nquads_document,
    serialize_nquads,
)
from repro.rdf.nquads import read_nquads, write_nquads


class TestParsing:
    def test_simple_triple(self):
        quads = parse_nquads_document("<http://x/s> <http://x/p> <http://x/o> .")
        assert quads == [Quad(IRI("http://x/s"), IRI("http://x/p"), IRI("http://x/o"))]

    def test_quad_with_graph(self):
        text = "<http://x/s> <http://x/p> <http://x/o> <http://x/g> ."
        (quad,) = parse_nquads_document(text)
        assert quad.graph == IRI("http://x/g")

    def test_plain_literal(self):
        (quad,) = parse_nquads_document('<http://x/s> <http://x/p> "Amy" .')
        assert quad.object == Literal("Amy")

    def test_typed_literal(self):
        text = f'<http://x/s> <http://x/p> "23"^^<{XSD.int.value}> .'
        (quad,) = parse_nquads_document(text)
        assert quad.object == Literal("23", XSD.int)
        assert quad.object.to_python() == 23

    def test_language_literal(self):
        (quad,) = parse_nquads_document('<http://x/s> <http://x/p> "train"@en-us .')
        assert quad.object.language == "en-us"

    def test_escaped_literal(self):
        (quad,) = parse_nquads_document(
            '<http://x/s> <http://x/p> "tab\\there \\"quoted\\"" .'
        )
        assert quad.object.lexical == 'tab\there "quoted"'

    def test_unicode_escape(self):
        (quad,) = parse_nquads_document('<http://x/s> <http://x/p> "\\u00e9" .')
        assert quad.object.lexical == "é"

    def test_blank_nodes(self):
        (quad,) = parse_nquads_document("_:a <http://x/p> _:b .")
        assert quad.subject == BlankNode("a")
        assert quad.object == BlankNode("b")

    def test_comments_and_blank_lines_skipped(self):
        text = "# header\n\n<http://x/s> <http://x/p> <http://x/o> .\n# footer\n"
        assert len(parse_nquads_document(text)) == 1

    def test_missing_dot_raises(self):
        with pytest.raises(NQuadsParseError) as err:
            parse_nquads_document("<http://x/s> <http://x/p> <http://x/o>")
        assert err.value.line_number == 1

    def test_trailing_garbage_raises(self):
        with pytest.raises(NQuadsParseError):
            parse_nquads_document("<http://x/s> <http://x/p> <http://x/o> . junk")

    def test_unterminated_literal_raises(self):
        with pytest.raises(NQuadsParseError):
            parse_nquads_document('<http://x/s> <http://x/p> "oops .')

    def test_unterminated_iri_raises(self):
        with pytest.raises(NQuadsParseError):
            parse_nquads_document("<http://x/s <http://x/p> <http://x/o> .")

    def test_literal_subject_rejected(self):
        with pytest.raises(NQuadsParseError):
            parse_nquads_document('"s" <http://x/p> <http://x/o> .')

    def test_error_reports_correct_line(self):
        text = "<http://x/s> <http://x/p> <http://x/o> .\nbroken line ."
        with pytest.raises(NQuadsParseError) as err:
            parse_nquads_document(text)
        assert err.value.line_number == 2


class TestRoundTrip:
    QUADS = [
        Quad(IRI("http://x/s"), IRI("http://x/p"), IRI("http://x/o")),
        Quad(IRI("http://x/s"), IRI("http://x/p"), Literal("a\nb"), IRI("http://x/g")),
        Quad(BlankNode("z"), IRI("http://x/p"), Literal("23", XSD.int)),
        Quad(IRI("http://x/s"), IRI("http://x/p"), Literal("hi", language="en")),
    ]

    def test_serialize_then_parse(self):
        text = serialize_nquads(self.QUADS)
        assert parse_nquads_document(text) == self.QUADS

    def test_empty(self):
        assert serialize_nquads([]) == ""
        assert parse_nquads_document("") == []

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "data.nq")
        assert write_nquads(self.QUADS, path) == len(self.QUADS)
        assert list(read_nquads(path)) == self.QUADS
