"""Tests for the Turtle / TriG writers."""

from repro.rdf import IRI, Literal, Quad, Triple, XSD
from repro.rdf.turtle import serialize_trig, serialize_turtle

PREFIXES = {"pg": "http://pg/", "k": "http://pg/k/", "xsd": XSD.base}


def triple(s, p, o):
    return Triple(IRI(s), IRI(p), o if not isinstance(o, str) else IRI(o))


class TestTurtle:
    def test_prefix_compaction(self):
        text = serialize_turtle(
            [triple("http://pg/v1", "http://pg/k/name", Literal("Amy"))],
            PREFIXES,
        )
        assert "pg:v1 k:name \"Amy\" ." in text
        assert "@prefix pg: <http://pg/> ." in text

    def test_uncompactable_iri_stays_bracketed(self):
        text = serialize_turtle(
            [triple("http://other/x", "http://pg/k/p", "http://other/y")],
            PREFIXES,
        )
        assert "<http://other/x>" in text

    def test_predicate_grouping_with_semicolons(self):
        triples = [
            triple("http://pg/v1", "http://pg/k/name", Literal("Amy")),
            triple("http://pg/v1", "http://pg/k/age", Literal.from_python(23)),
        ]
        text = serialize_turtle(triples, PREFIXES)
        assert text.count("pg:v1") == 1
        assert " ;" in text

    def test_object_grouping_with_commas(self):
        triples = [
            triple("http://pg/v1", "http://pg/k/tag", Literal("#a")),
            triple("http://pg/v1", "http://pg/k/tag", Literal("#b")),
        ]
        text = serialize_turtle(triples, PREFIXES)
        assert '"#a", "#b"' in text

    def test_xsd_datatype_compaction(self):
        text = serialize_turtle(
            [triple("http://pg/v1", "http://pg/k/age", Literal.from_python(23))],
            PREFIXES,
        )
        assert '"23"^^xsd:int' in text

    def test_empty(self):
        assert serialize_turtle([], {}) == ""


class TestTrig:
    def test_named_graph_blocks(self):
        quads = [
            Quad(IRI("http://pg/v1"), IRI("http://pg/r/follows"),
                 IRI("http://pg/v2"), IRI("http://pg/e3")),
            Quad(IRI("http://pg/v1"), IRI("http://pg/k/name"), Literal("Amy")),
        ]
        text = serialize_trig(quads, PREFIXES)
        assert "pg:e3 {" in text
        assert 'pg:v1 k:name "Amy" .' in text  # default graph outside blocks

    def test_ng_model_renders_readably(self):
        from repro.core import MODEL_NG, transformer_for
        from repro.propertygraph import PropertyGraph

        graph = PropertyGraph()
        graph.add_vertex(1, {"name": "Amy"})
        graph.add_vertex(2)
        graph.add_edge(1, "follows", 2, {"since": 2007}, edge_id=3)
        quads = list(transformer_for(MODEL_NG).transform(graph))
        text = serialize_trig(
            quads, {"pg": "http://pg/", "r": "http://pg/r/", "k": "http://pg/k/"}
        )
        assert "pg:e3 {" in text
        assert "r:follows" in text
