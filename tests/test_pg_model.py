"""Unit tests for the property graph model."""

import pytest

from repro.propertygraph import PropertyGraph, PropertyGraphError


@pytest.fixture
def figure1():
    """The paper's Figure 1 sample graph."""
    graph = PropertyGraph("figure1")
    graph.add_vertex(1, {"name": "Amy", "age": 23})
    graph.add_vertex(2, {"name": "Mira", "age": 22})
    graph.add_edge(1, "follows", 2, {"since": 2007}, edge_id=3)
    graph.add_edge(1, "knows", 2, {"firstMetAt": "MIT"}, edge_id=4)
    return graph


class TestVertices:
    def test_counts(self, figure1):
        assert figure1.vertex_count == 2
        assert figure1.edge_count == 2

    def test_properties(self, figure1):
        assert figure1.vertex(1).get_property("name") == "Amy"
        assert figure1.vertex(2).get_property("age") == 22

    def test_auto_ids(self):
        graph = PropertyGraph()
        v1 = graph.add_vertex()
        v2 = graph.add_vertex()
        assert v1.id != v2.id

    def test_duplicate_vertex_rejected(self, figure1):
        with pytest.raises(PropertyGraphError):
            figure1.add_vertex(1)

    def test_unknown_vertex(self, figure1):
        with pytest.raises(PropertyGraphError):
            figure1.vertex(99)

    def test_non_scalar_property_rejected(self, figure1):
        with pytest.raises(PropertyGraphError):
            figure1.vertex(1).set_property("bad", [1, 2])

    def test_empty_key_rejected(self, figure1):
        with pytest.raises(PropertyGraphError):
            figure1.vertex(1).set_property("", "x")

    def test_remove_vertex_cascades_edges(self, figure1):
        figure1.remove_vertex(2)
        assert figure1.edge_count == 0
        assert not figure1.has_vertex(2)

    def test_remove_property(self, figure1):
        figure1.vertex(1).remove_property("age")
        assert figure1.vertex(1).get_property("age") is None


class TestEdges:
    def test_edge_attributes(self, figure1):
        edge = figure1.edge(3)
        assert edge.label == "follows"
        assert edge.source == 1 and edge.target == 2
        assert edge.get_property("since") == 2007

    def test_multi_relational(self, figure1):
        # Two parallel edges between the same vertices, different labels.
        labels = {e.label for e in figure1.out_edges(1)}
        assert labels == {"follows", "knows"}

    def test_edge_requires_existing_vertices(self, figure1):
        with pytest.raises(PropertyGraphError):
            figure1.add_edge(1, "follows", 99)
        with pytest.raises(PropertyGraphError):
            figure1.add_edge(99, "follows", 1)

    def test_duplicate_edge_id_rejected(self, figure1):
        with pytest.raises(PropertyGraphError):
            figure1.add_edge(2, "follows", 1, edge_id=3)

    def test_empty_label_rejected(self, figure1):
        with pytest.raises(PropertyGraphError):
            figure1.add_edge(1, "", 2)

    def test_remove_edge(self, figure1):
        figure1.remove_edge(3)
        assert not figure1.has_edge(3)
        assert figure1.out_degree(1) == 1

    def test_adjacency(self, figure1):
        assert figure1.out_neighbors(1, "follows") == [2]
        assert figure1.in_neighbors(2) == [1, 1]
        assert figure1.out_degree(1) == 2
        assert figure1.in_degree(2, "knows") == 1


class TestStatistics:
    def test_labels_and_keys(self, figure1):
        assert figure1.labels() == ["follows", "knows"]
        assert figure1.vertex_keys() == ["age", "name"]
        assert figure1.edge_keys() == ["firstMetAt", "since"]

    def test_kv_counts(self, figure1):
        assert figure1.vertex_kv_count() == 4
        assert figure1.edge_kv_count() == 2
        assert figure1.edges_with_kv_count() == 2

    def test_isolated_vertices(self, figure1):
        isolated = figure1.add_vertex(10)
        assert figure1.isolated_vertices() == [10]
        isolated.set_property("k", "v")
        assert figure1.isolated_vertices() == []

    def test_degree_distribution(self, figure1):
        out_hist, in_hist = figure1.degree_distribution()
        assert out_hist == {2: 1, 0: 1}
        assert in_hist == {0: 1, 2: 1}


class TestMultiValuedProperties:
    def test_add_property_single_stays_scalar(self):
        graph = PropertyGraph()
        vertex = graph.add_vertex(1)
        vertex.add_property("hasTag", "#a")
        assert vertex.properties["hasTag"] == "#a"

    def test_add_property_accumulates(self):
        graph = PropertyGraph()
        vertex = graph.add_vertex(1)
        vertex.add_property("hasTag", "#b")
        vertex.add_property("hasTag", "#a")
        assert vertex.property_values("hasTag") == ("#a", "#b")  # sorted

    def test_add_property_dedupes(self):
        graph = PropertyGraph()
        vertex = graph.add_vertex(1)
        vertex.add_property("hasTag", "#a")
        vertex.add_property("hasTag", "#a")
        assert vertex.property_values("hasTag") == ("#a",)

    def test_bool_and_int_not_conflated(self):
        graph = PropertyGraph()
        vertex = graph.add_vertex(1)
        vertex.add_property("k", True)
        vertex.add_property("k", 1)
        assert len(vertex.property_values("k")) == 2

    def test_has_property_value(self):
        graph = PropertyGraph()
        vertex = graph.add_vertex(1)
        vertex.add_property("hasTag", "#a")
        vertex.add_property("hasTag", "#b")
        assert vertex.has_property_value("hasTag", "#a")
        assert not vertex.has_property_value("hasTag", "#z")

    def test_kv_pairs_flatten(self):
        graph = PropertyGraph()
        vertex = graph.add_vertex(1, {"name": "Amy"})
        vertex.add_property("hasTag", "#a")
        vertex.add_property("hasTag", "#b")
        assert sorted(vertex.kv_pairs()) == [
            ("hasTag", "#a"), ("hasTag", "#b"), ("name", "Amy"),
        ]
        assert vertex.kv_count() == 3

    def test_kv_counts_include_multivalues(self):
        graph = PropertyGraph()
        vertex = graph.add_vertex(1)
        vertex.add_property("hasTag", "#a")
        vertex.add_property("hasTag", "#b")
        assert graph.vertex_kv_count() == 2

    def test_set_property_replaces_multivalue(self):
        graph = PropertyGraph()
        vertex = graph.add_vertex(1)
        vertex.add_property("k", "a")
        vertex.add_property("k", "b")
        vertex.set_property("k", "c")
        assert vertex.property_values("k") == ("c",)

    def test_get_property_on_multivalue_returns_first(self):
        graph = PropertyGraph()
        vertex = graph.add_vertex(1)
        vertex.add_property("k", "b")
        vertex.add_property("k", "a")
        assert vertex.get_property("k") == "a"

    def test_multivalue_transform_roundtrip(self):
        from repro.core import MODEL_NG, transformer_for
        from repro.core.roundtrip import rdf_to_property_graph

        graph = PropertyGraph()
        graph.add_vertex(1)
        graph.add_vertex(2)
        edge = graph.add_edge(1, "follows", 2, edge_id=3)
        edge.add_property("hasTag", "#a")
        edge.add_property("hasTag", "#b")
        graph.vertex(1).add_property("refs", "@x")
        graph.vertex(1).add_property("refs", "@y")
        quads = list(transformer_for(MODEL_NG).transform(graph))
        rebuilt = rdf_to_property_graph(quads, MODEL_NG)
        assert rebuilt.edge(3).property_values("hasTag") == ("#a", "#b")
        assert rebuilt.vertex(1).property_values("refs") == ("@x", "@y")


class TestSubgraphAndMerge:
    def test_induced_subgraph(self, figure1):
        figure1.add_vertex(5, {"name": "Eve"})
        figure1.add_edge(2, "follows", 5)
        sub = figure1.subgraph([1, 2])
        assert sub.vertex_count == 2
        assert sub.edge_count == 2  # both 1->2 edges; the 2->5 edge dropped
        assert sub.vertex(1).get_property("name") == "Amy"
        assert sub.edge(3).get_property("since") == 2007

    def test_subgraph_unknown_vertex(self, figure1):
        with pytest.raises(PropertyGraphError):
            figure1.subgraph([1, 99])

    def test_subgraph_is_a_copy(self, figure1):
        sub = figure1.subgraph([1, 2])
        sub.vertex(1).set_property("name", "Changed")
        assert figure1.vertex(1).get_property("name") == "Amy"

    def test_merge_unifies_vertices(self, figure1):
        other = PropertyGraph("other")
        other.add_vertex(2, {"city": "Boston"})
        other.add_vertex(9, {"name": "Nia"})
        other.add_edge(2, "follows", 9)
        figure1.merge(other)
        assert figure1.vertex_count == 3
        assert figure1.vertex(2).get_property("city") == "Boston"
        assert figure1.vertex(2).get_property("name") == "Mira"  # kept
        assert figure1.edge_count == 3

    def test_merge_multivalues(self, figure1):
        other = PropertyGraph("other")
        other.add_vertex(1)
        other.vertex(1).add_property("name", "Amy2")
        figure1.merge(other)
        assert set(figure1.vertex(1).property_values("name")) == {
            "Amy", "Amy2",
        }

    def test_merge_assigns_fresh_edge_ids(self, figure1):
        other = PropertyGraph("other")
        other.add_vertex(1)
        other.add_vertex(2)
        other.add_edge(1, "likes", 2, edge_id=3)  # clashes with figure1's 3
        figure1.merge(other)
        labels = sorted(e.label for e in figure1.edges())
        assert labels == ["follows", "knows", "likes"]
