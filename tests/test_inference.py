"""Tests for the rule engine, RDFS rules, and the OWL 2 RL subset."""

import pytest

from repro.inference import (
    OWL_RL_RULES,
    RDFS_RULES,
    Rule,
    RuleEngine,
    owl_rl_closure,
    rdfs_closure,
    var,
)
from repro.inference.owl import property_chain_rule
from repro.rdf import IRI, Literal, OWL, RDF, RDFS, Triple

EX = "http://ex/"


def ex(name):
    return IRI(EX + name)


class TestRuleEngine:
    def test_simple_derivation(self):
        rule = Rule(
            "r", body=((var("x"), ex("p"), var("y")),),
            head=((var("y"), ex("q"), var("x")),),
        )
        closure = RuleEngine([rule]).closure([Triple(ex("a"), ex("p"), ex("b"))])
        assert Triple(ex("b"), ex("q"), ex("a")) in closure

    def test_transitive_closure_converges(self):
        rule = Rule(
            "trans",
            body=((var("x"), ex("p"), var("y")), (var("y"), ex("p"), var("z"))),
            head=((var("x"), ex("p"), var("z")),),
        )
        chain = [Triple(ex(f"n{i}"), ex("p"), ex(f"n{i+1}")) for i in range(6)]
        closure = RuleEngine([rule]).closure(chain)
        # n0 reaches all of n1..n6.
        p_triples = [t for t in closure if t.subject == ex("n0")]
        assert len(p_triples) == 6

    def test_cycle_converges(self):
        rule = Rule(
            "trans",
            body=((var("x"), ex("p"), var("y")), (var("y"), ex("p"), var("z"))),
            head=((var("x"), ex("p"), var("z")),),
        )
        cycle = [
            Triple(ex("a"), ex("p"), ex("b")),
            Triple(ex("b"), ex("p"), ex("a")),
        ]
        closure = RuleEngine([rule]).closure(cycle)
        assert Triple(ex("a"), ex("p"), ex("a")) in closure

    def test_inferred_only_excludes_asserted(self):
        rule = Rule(
            "r", body=((var("x"), ex("p"), var("y")),),
            head=((var("y"), ex("q"), var("x")),),
        )
        asserted = [Triple(ex("a"), ex("p"), ex("b"))]
        inferred = RuleEngine([rule]).inferred_only(asserted)
        assert inferred == {Triple(ex("b"), ex("q"), ex("a"))}

    def test_head_variable_must_occur_in_body(self):
        with pytest.raises(ValueError):
            Rule(
                "bad", body=((var("x"), ex("p"), var("y")),),
                head=((var("z"), ex("q"), var("x")),),
            )

    def test_invalid_derived_triples_skipped(self):
        # Literal would flow into subject position: skipped, not crash.
        rule = Rule(
            "swap", body=((var("x"), ex("p"), var("y")),),
            head=((var("y"), ex("q"), var("x")),),
        )
        closure = RuleEngine([rule]).closure(
            [Triple(ex("a"), ex("p"), Literal("lit"))]
        )
        assert len(closure) == 1

    def test_multi_pattern_join(self):
        rule = Rule(
            "uncle",
            body=(
                (var("c"), ex("hasFather"), var("f")),
                (var("f"), ex("hasBrother"), var("u")),
            ),
            head=((var("c"), ex("hasUncle"), var("u")),),
        )
        closure = RuleEngine([rule]).closure(
            [
                Triple(ex("john"), ex("hasFather"), ex("mark")),
                Triple(ex("mark"), ex("hasBrother"), ex("tom")),
            ]
        )
        assert Triple(ex("john"), ex("hasUncle"), ex("tom")) in closure


class TestRdfs:
    def test_subproperty_inheritance_rdfs7(self):
        closure = rdfs_closure(
            [
                Triple(ex("e3"), RDFS.subPropertyOf, ex("follows")),
                Triple(ex("v1"), ex("e3"), ex("v2")),
            ]
        )
        assert Triple(ex("v1"), ex("follows"), ex("v2")) in closure

    def test_sp_model_derivability(self):
        """The SP encoding's -s-p-o triple is derivable via rdfs7 —
        the paper asserts it explicitly as an optimization."""
        from repro.core import MODEL_SP, transformer_for
        from repro.propertygraph import PropertyGraph

        graph = PropertyGraph()
        graph.add_vertex(1)
        graph.add_vertex(2)
        graph.add_edge(1, "follows", 2, {"since": 2007}, edge_id=3)
        quads = list(transformer_for(MODEL_SP).transform(graph))
        explicit = {q.triple() for q in quads}
        # Remove the explicit -s-p-o triple; RDFS must re-derive it.
        vocab = transformer_for(MODEL_SP).vocabulary
        spo = Triple(
            vocab.vertex_iri(1), vocab.label_iri("follows"), vocab.vertex_iri(2)
        )
        reduced = explicit - {spo}
        assert spo in rdfs_closure(reduced)

    def test_subproperty_transitivity_rdfs5(self):
        closure = rdfs_closure(
            [
                Triple(ex("a"), RDFS.subPropertyOf, ex("b")),
                Triple(ex("b"), RDFS.subPropertyOf, ex("c")),
            ]
        )
        assert Triple(ex("a"), RDFS.subPropertyOf, ex("c")) in closure

    def test_domain_and_range(self):
        closure = rdfs_closure(
            [
                Triple(ex("follows"), RDFS.domain, ex("Person")),
                Triple(ex("follows"), RDFS.range, ex("Person")),
                Triple(ex("v1"), ex("follows"), ex("v2")),
            ]
        )
        assert Triple(ex("v1"), RDF.type, ex("Person")) in closure
        assert Triple(ex("v2"), RDF.type, ex("Person")) in closure

    def test_subclass_chain(self):
        closure = rdfs_closure(
            [
                Triple(ex("Student"), RDFS.subClassOf, ex("Person")),
                Triple(ex("Person"), RDFS.subClassOf, ex("Agent")),
                Triple(ex("amy"), RDF.type, ex("Student")),
            ]
        )
        assert Triple(ex("amy"), RDF.type, ex("Agent")) in closure


class TestOwlRl:
    def test_sameas_substitution(self):
        closure = owl_rl_closure(
            [
                Triple(ex("tampa1"), OWL.sameAs, ex("tampa2")),
                Triple(ex("tampa1"), ex("inState"), ex("florida")),
            ]
        )
        assert Triple(ex("tampa2"), ex("inState"), ex("florida")) in closure
        assert Triple(ex("tampa2"), OWL.sameAs, ex("tampa1")) in closure

    def test_equivalent_property_both_ways(self):
        closure = owl_rl_closure(
            [
                Triple(ex("hasTag"), OWL.equivalentProperty, ex("tagged")),
                Triple(ex("n1"), ex("hasTag"), Literal("#x")),
                Triple(ex("n2"), ex("tagged"), Literal("#y")),
            ]
        )
        assert Triple(ex("n1"), ex("tagged"), Literal("#x")) in closure
        assert Triple(ex("n2"), ex("hasTag"), Literal("#y")) in closure

    def test_inverse_of(self):
        closure = owl_rl_closure(
            [
                Triple(ex("follows"), OWL.inverseOf, ex("followedBy")),
                Triple(ex("a"), ex("follows"), ex("b")),
            ]
        )
        assert Triple(ex("b"), ex("followedBy"), ex("a")) in closure

    def test_transitive_property(self):
        closure = owl_rl_closure(
            [
                Triple(ex("ancestor"), RDF.type, OWL.TransitiveProperty),
                Triple(ex("a"), ex("ancestor"), ex("b")),
                Triple(ex("b"), ex("ancestor"), ex("c")),
            ]
        )
        assert Triple(ex("a"), ex("ancestor"), ex("c")) in closure

    def test_symmetric_property(self):
        closure = owl_rl_closure(
            [
                Triple(ex("nbr"), RDF.type, OWL.SymmetricProperty),
                Triple(ex("us"), ex("nbr"), ex("mexico")),
            ]
        )
        assert Triple(ex("mexico"), ex("nbr"), ex("us")) in closure

    def test_property_chain_factbook_example(self):
        """Section 5.2: country -bndry-> boundary -ports-> port entails
        country :nbrOfPort port."""
        chain = property_chain_rule(
            "nbr-of-port", [ex("bndry"), ex("ports")], ex("nbrOfPort")
        )
        closure = owl_rl_closure(
            [
                Triple(ex("mexico"), ex("bndry"), ex("gulf")),
                Triple(ex("gulf"), ex("ports"), ex("tampa")),
            ],
            extra_rules=[chain],
        )
        assert Triple(ex("mexico"), ex("nbrOfPort"), ex("tampa")) in closure

    def test_property_chain_needs_two_steps(self):
        with pytest.raises(ValueError):
            property_chain_rule("x", [ex("p")], ex("r"))

    def test_user_defined_rule_hastagr(self):
        """The paper's hasTagR rule: node with #tag linking to the
        tag's neighboring country."""
        has_tag_r = Rule(
            "hasTagR",
            body=(
                (var("n"), ex("hasTag"), var("t")),
                (var("t"), ex("nbr"), var("c")),
            ),
            head=((var("n"), ex("hasTagR"), var("c")),),
        )
        closure = owl_rl_closure(
            [
                Triple(ex("node9"), ex("hasTag"), ex("tampaTag")),
                Triple(ex("tampaTag"), ex("nbr"), ex("mexico")),
            ],
            extra_rules=[has_tag_r],
        )
        assert Triple(ex("node9"), ex("hasTagR"), ex("mexico")) in closure


class TestFunctionalProperties:
    def test_functional_property_merges_values(self):
        closure = owl_rl_closure(
            [
                Triple(ex("hasMother"), RDF.type, OWL.FunctionalProperty),
                Triple(ex("amy"), ex("hasMother"), ex("jane")),
                Triple(ex("amy"), ex("hasMother"), ex("janeDoe")),
            ]
        )
        assert Triple(ex("jane"), OWL.sameAs, ex("janeDoe")) in closure

    def test_inverse_functional_property_merges_subjects(self):
        closure = owl_rl_closure(
            [
                Triple(ex("hasSSN"), RDF.type, OWL.InverseFunctionalProperty),
                Triple(ex("p1"), ex("hasSSN"), ex("ssn42")),
                Triple(ex("p2"), ex("hasSSN"), ex("ssn42")),
            ]
        )
        assert Triple(ex("p1"), OWL.sameAs, ex("p2")) in closure

    def test_functional_merge_propagates_facts(self):
        """prp-fp + eq-rep: facts about one alias apply to the other."""
        closure = owl_rl_closure(
            [
                Triple(ex("hasMother"), RDF.type, OWL.FunctionalProperty),
                Triple(ex("amy"), ex("hasMother"), ex("jane")),
                Triple(ex("amy"), ex("hasMother"), ex("janeDoe")),
                Triple(ex("jane"), ex("livesIn"), ex("boston")),
            ]
        )
        assert Triple(ex("janeDoe"), ex("livesIn"), ex("boston")) in closure

    def test_self_sameas_harmless(self):
        # prp-fp with a single value derives x sameAs x; closure converges.
        closure = owl_rl_closure(
            [
                Triple(ex("hasMother"), RDF.type, OWL.FunctionalProperty),
                Triple(ex("amy"), ex("hasMother"), ex("jane")),
            ]
        )
        assert Triple(ex("jane"), OWL.sameAs, ex("jane")) in closure
