"""Tests for the relational substrate and the intro's SQL comparison."""

import pytest

from repro.relational import (
    ConjunctivePattern,
    Table,
    TriplesTable,
    query_complexity,
)
from repro.relational.complexity import sparql_text


class TestTable:
    def test_insert_and_len(self):
        table = Table(["a", "b"], [(1, 2), (3, 4)])
        assert len(table) == 2

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError):
            Table(["a", "a"])

    def test_arity_checked(self):
        with pytest.raises(ValueError):
            Table(["a", "b"]).insert((1,))

    def test_select(self):
        table = Table(["a", "b"], [(1, 2), (1, 3), (2, 2)])
        assert len(table.select(a=1)) == 2
        assert len(table.select(a=1, b=3)) == 1

    def test_select_unknown_column(self):
        with pytest.raises(KeyError):
            Table(["a"]).select(z=1)

    def test_project(self):
        table = Table(["a", "b"], [(1, 2)])
        assert table.project(["b"]).rows == [(2,)]

    def test_rename(self):
        table = Table(["a"], [(1,)]).rename("t1")
        assert table.columns == ("t1.a",)

    def test_join(self):
        left = Table(["a", "b"], [(1, 10), (2, 20)])
        right = Table(["c", "d"], [(10, "x"), (10, "y"), (30, "z")])
        joined = left.join(right, on=[("b", "c")])
        assert sorted(joined.rows) == [(1, 10, 10, "x"), (1, 10, 10, "y")]

    def test_cartesian_join(self):
        left = Table(["a"], [(1,), (2,)])
        right = Table(["b"], [(9,)])
        assert len(left.join(right, on=[])) == 2

    def test_distinct(self):
        table = Table(["a"], [(1,), (1,), (2,)])
        assert len(table.distinct()) == 2


@pytest.fixture
def uncle_data():
    """The intro's family data: John -> father Mark -> brother Tom ->
    works for Acme."""
    triples = TriplesTable()
    triples.insert("john", "name", "John")
    triples.insert("john", "hasFather", "mark")
    triples.insert("mark", "hasBrother", "tom")
    triples.insert("tom", "worksFor", "acme")
    triples.insert("tom", "name", "Tom")
    return triples


#: The paper's 4-way join: find the company John's uncle works for.
UNCLE_QUERY = [
    ConjunctivePattern("?x", "name", "John"),
    ConjunctivePattern("?x", "hasFather", "?f"),
    ConjunctivePattern("?f", "hasBrother", "?b"),
    ConjunctivePattern("?b", "worksFor", "?company"),
]


class TestTriplesTable:
    def test_uncle_query(self, uncle_data):
        rows = uncle_data.query(UNCLE_QUERY, ["company"])
        assert rows == [("acme",)]

    def test_single_pattern(self, uncle_data):
        rows = uncle_data.query(
            [ConjunctivePattern("?x", "worksFor", "?c")], ["x", "c"]
        )
        assert rows == [("tom", "acme")]

    def test_repeated_variable_within_pattern(self):
        triples = TriplesTable()
        triples.insert("a", "p", "a")
        triples.insert("a", "p", "b")
        rows = triples.query([ConjunctivePattern("?x", "p", "?x")], ["x"])
        assert rows == [("a",)]

    def test_projection_of_unbound_rejected(self, uncle_data):
        with pytest.raises(ValueError):
            uncle_data.query(UNCLE_QUERY, ["nope"])

    def test_empty_query_rejected(self, uncle_data):
        with pytest.raises(ValueError):
            uncle_data.query([], ["x"])

    def test_sql_rendering_matches_paper_shape(self, uncle_data):
        sql = uncle_data.sql(UNCLE_QUERY, ["company"])
        # 4 aliased copies of the table, 4 constants + 3 join predicates.
        assert sql.count("triples t") == 4
        assert sql.count(" = '") == 5  # name, John, hasFather, ... constants
        assert sql.count("AND") == 8 - 1  # 8 conjuncts total
        assert "t4.obj company" in sql

    def test_sql_executes_same_as_query(self, uncle_data):
        # The rendered SQL's semantics are what query() executes; check
        # result parity on a second dataset with two uncles.
        uncle_data.insert("mark", "hasBrother", "bob")
        uncle_data.insert("bob", "worksFor", "globex")
        rows = uncle_data.query(UNCLE_QUERY, ["company"])
        assert sorted(rows) == [("acme",), ("globex",)]


class TestComplexity:
    def test_uncle_query_metrics(self):
        complexity = query_complexity(UNCLE_QUERY)
        assert complexity.patterns == 4
        assert complexity.constants == 5  # name/John, hasFather, hasBrother, worksFor
        assert complexity.equi_joins == 3  # ?x, ?f, ?b reused
        assert complexity.sql_predicates == 8
        assert complexity.sparql_terms == 12

    def test_sparql_simpler_than_sql(self):
        complexity = query_complexity(UNCLE_QUERY)
        assert complexity.sparql_terms < complexity.sql_tokens_lower_bound

    def test_sparql_text(self):
        text = sparql_text(UNCLE_QUERY, ["company"])
        assert text.startswith("SELECT ?company WHERE {")
        assert '?x "name" "John" .' in text
        assert text.count(".") == 4
