"""MVCC snapshot reads: immutability, atomic visibility, linearizability.

The contract under test (see ``src/repro/store/snapshot.py``):

* ``SemanticNetwork.snapshot()`` is an O(1) pin of the current
  committed ``data_version`` — one attribute read, no lock;
* a pinned snapshot is immutable: later DML, ``drop_model`` or
  checkpoints never change what it sees;
* queries run entirely against one snapshot, so a multi-quad update is
  either fully visible or not visible at all (no torn reads);
* concurrent query results are *linearizable*: every result equals the
  single-threaded state at some version between the query's start and
  end;
* snapshots are reclaimed by the garbage collector once unpinned.
"""

import gc
import os
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.rdf import IRI, Quad
from repro.sparql import SparqlEngine
from repro.store import NetworkSnapshot, SemanticNetwork, StoreError

from .conftest import EX, ex


def quads_of(snapshot_or_network, model="m"):
    return set(snapshot_or_network.quads(model))


class TestSnapshotBasics:
    def make(self, n=3):
        network = SemanticNetwork()
        network.create_model("m")
        for i in range(n):
            network.insert("m", Quad(ex(f"s{i}"), ex("p"), ex(f"o{i}")))
        return network

    def test_snapshot_is_o1_pin(self):
        # Between commits, every pin returns the very same published
        # object — capture happens at commit time, not at pin time.
        network = self.make()
        assert network.snapshot() is network.snapshot()
        assert isinstance(network.snapshot(), NetworkSnapshot)

    def test_snapshot_carries_committed_version(self):
        network = self.make()
        snap = network.snapshot()
        assert snap.data_version == network.data_version
        network.insert("m", Quad(ex("x"), ex("p"), ex("y")))
        assert network.data_version == snap.data_version + 1
        assert network.snapshot() is not snap

    def test_snapshot_immutable_under_inserts_and_deletes(self):
        network = self.make(3)
        snap = network.snapshot()
        before = quads_of(snap)
        network.insert("m", Quad(ex("new"), ex("p"), ex("o")))
        network.delete("m", Quad(ex("s0"), ex("p"), ex("o0")))
        network.clear_model("m")
        assert quads_of(snap) == before
        assert len(snap.model("m")) == 3
        assert len(network.model("m")) == 0

    def test_write_batch_commits_one_version(self):
        network = self.make(0)
        v = network.data_version
        with network.write_batch():
            for i in range(5):
                network.insert("m", Quad(ex(f"b{i}"), ex("p"), ex("o")))
            # Mid-batch: nothing published yet, version unchanged.
            assert network.data_version == v
            assert len(network.snapshot().model("m")) == 0
        assert network.data_version == v + 1
        assert len(network.snapshot().model("m")) == 5

    def test_snapshot_survives_drop_model(self):
        network = self.make(2)
        snap = network.snapshot()
        network.drop_model("m")
        with pytest.raises(StoreError):
            network.model("m")
        # The pinned view still scans the dropped model's data.
        assert len(snap.model("m")) == 2
        assert quads_of(snap) == {
            Quad(ex("s0"), ex("p"), ex("o0")),
            Quad(ex("s1"), ex("p"), ex("o1")),
        }

    def test_snapshot_survives_checkpoint(self, tmp_path):
        from repro.store import open_durable

        store = open_durable(os.path.join(str(tmp_path), "store"))
        store.create_model("m")
        store.insert("m", Quad(ex("a"), ex("p"), ex("b")))
        snap = store.snapshot()
        store.insert("m", Quad(ex("c"), ex("p"), ex("d")))
        store.checkpoint()
        assert quads_of(snap) == {Quad(ex("a"), ex("p"), ex("b"))}
        store.close()

    def test_virtual_models_snapshot(self):
        network = SemanticNetwork()
        network.create_model("m1")
        network.create_model("m2")
        network.insert("m1", Quad(ex("a"), ex("p"), ex("b")))
        network.insert("m2", Quad(ex("c"), ex("p"), ex("d")))
        network.create_virtual_model("v", ["m1", "m2"])
        snap = network.snapshot()
        network.insert("m2", Quad(ex("e"), ex("p"), ex("f")))
        assert len(snap.model("v")) == 2
        assert len(network.model("v")) == 3

    def test_snapshot_scan_matches_live_model(self):
        network = self.make(20)
        snap = network.snapshot()
        live = network.model("m")
        view = snap.model("m")
        for pattern in [
            (None, None, None, None),
            (network.lookup_term(ex("s3")), None, None, None),
            (None, network.lookup_term(ex("p")), None, None),
        ]:
            assert sorted(view.scan(pattern)) == sorted(live.scan(pattern))
            assert view.estimate(pattern) == live.estimate(pattern)

    def test_old_snapshots_are_reclaimed(self):
        network = self.make(1)
        pinned = network.snapshot()
        for i in range(10):
            network.insert("m", Quad(ex(f"r{i}"), ex("p"), ex("o")))
        gc.collect()
        # Only the explicit pin and the currently published snapshot
        # survive; the 9 intermediate versions were collected.
        assert network.live_snapshot_count() <= 2
        assert pinned.data_version < network.data_version
        del pinned
        gc.collect()
        assert network.live_snapshot_count() == 1


class TestLockFreeReads:
    def test_query_completes_while_write_lock_held(self, social_engine):
        """The acceptance criterion, literally: a held write lock must
        not delay a query, because queries take no lock at all."""
        network = social_engine.network
        network.lock.acquire_write()
        try:
            done = threading.Event()
            rows = []

            def read():
                rows.extend(
                    social_engine.select(
                        "SELECT ?n WHERE { ?x <http://ex/name> ?n } ORDER BY ?n"
                    ).rows
                )
                done.set()

            thread = threading.Thread(target=read)
            thread.start()
            assert done.wait(timeout=5), "query blocked behind write lock"
            thread.join(timeout=5)
            assert [row[0].lexical for row in rows] == [
                "Alice", "Bob", "Carol",
            ]
        finally:
            network.lock.release_write()

    def test_readers_progress_during_long_update(self):
        """Readers keep answering while an exclusive writer is active."""
        network = SemanticNetwork()
        network.create_model("m")
        engine = SparqlEngine(network, default_model="m")
        engine.update(
            f"INSERT DATA {{ <{EX}a> <{EX}p> <{EX}b> }}"
        )
        in_batch = threading.Event()
        release = threading.Event()

        def long_writer():
            with network.write_batch():
                network.insert("m", Quad(ex("w"), ex("p"), ex("o")))
                in_batch.set()
                release.wait(timeout=10)

        writer = threading.Thread(target=long_writer)
        writer.start()
        try:
            assert in_batch.wait(timeout=5)
            # The batch is open (uncommitted) — reads still answer, and
            # see the pre-batch state.
            result = engine.select("SELECT ?s WHERE { ?s ?p ?o }")
            assert len(result.rows) == 1
        finally:
            release.set()
            writer.join(timeout=10)
        assert len(engine.select("SELECT ?s WHERE { ?s ?p ?o }").rows) == 2


class TestNoTornReads:
    def test_multi_quad_updates_are_atomic(self):
        """4 readers x 2 writers: every UPDATE inserts one <a>, one <b>
        and one <c> triple; a reader catching unequal counts has seen a
        torn (partially applied) update."""
        duration = 1.5
        network = SemanticNetwork()
        network.create_model("m")
        engine = SparqlEngine(network, default_model="m")
        stop_at = time.monotonic() + duration
        errors = []
        reads = [0]
        writes = [0, 0]
        count_query = (
            "SELECT ?p (COUNT(*) AS ?c) WHERE { ?s ?p ?o } GROUP BY ?p"
        )

        def reader():
            try:
                while time.monotonic() < stop_at:
                    result = engine.select(count_query)
                    counts = {
                        row[0].value: int(row[1].lexical)
                        for row in result.rows
                    }
                    a = counts.get(f"{EX}a", 0)
                    b = counts.get(f"{EX}b", 0)
                    c = counts.get(f"{EX}c", 0)
                    if not (a == b == c):
                        errors.append(f"torn read: a={a} b={b} c={c}")
                        return
                    reads[0] += 1
            except Exception as exc:  # noqa: BLE001 - recorded for assert
                errors.append(f"reader: {exc!r}")

        def writer(index):
            try:
                n = 0
                while time.monotonic() < stop_at:
                    engine.update(
                        "INSERT DATA { "
                        f"<{EX}s{index}-{n}> <{EX}a> <{EX}o> . "
                        f"<{EX}s{index}-{n}> <{EX}b> <{EX}o> . "
                        f"<{EX}s{index}-{n}> <{EX}c> <{EX}o> . "
                        "}"
                    )
                    n += 1
                writes[index] = n
            except Exception as exc:  # noqa: BLE001
                errors.append(f"writer{index}: {exc!r}")

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads += [
            threading.Thread(target=writer, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=duration + 30)
            assert not t.is_alive(), "thread failed to finish (deadlock?)"
        assert errors == []
        assert reads[0] > 0 and sum(writes) > 0


class TestPlanCacheUnderWrites:
    def test_cached_plan_never_serves_stale_rows(self):
        """Regression for the invalidation race: the cached plan's
        version now comes from the pinned snapshot, so a hit can never
        pair an old plan with newer data (or vice versa)."""
        network = SemanticNetwork()
        network.create_model("m")
        engine = SparqlEngine(network, default_model="m")
        query = f"SELECT ?s WHERE {{ ?s <{EX}p> ?o }}"
        for i in range(20):
            network.insert("m", Quad(ex(f"s{i}"), ex("p"), ex("o")))
            rows = engine.select(query).rows
            assert len(rows) == i + 1, "cache served a stale plan/result"

    def test_cache_consistent_under_write_hammer(self):
        network = SemanticNetwork()
        network.create_model("m")
        engine = SparqlEngine(network, default_model="m")
        query = (
            f"SELECT (COUNT(*) AS ?a) WHERE {{ ?s <{EX}a> ?o }}"
        )
        stop_at = time.monotonic() + 1.0
        errors = []

        def reader():
            try:
                while time.monotonic() < stop_at:
                    engine.select(query)
            except Exception as exc:  # noqa: BLE001
                errors.append(repr(exc))

        def writer():
            try:
                n = 0
                while time.monotonic() < stop_at:
                    network.insert("m", Quad(ex(f"h{n}"), ex("a"), ex("o")))
                    n += 1
            except Exception as exc:  # noqa: BLE001
                errors.append(repr(exc))

        threads = [threading.Thread(target=reader) for _ in range(3)]
        threads.append(threading.Thread(target=writer))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
            assert not t.is_alive()
        assert errors == []
        # The cache still answers correctly after the storm.
        final = int(engine.select(query).rows[0][0].lexical)
        assert final == len(network.model("m"))


POOL = [
    Quad(IRI(f"{EX}s{i}"), IRI(f"{EX}p"), IRI(f"{EX}o{i}")) for i in range(8)
]


class TestLinearizability:
    """Differential test: concurrent reads equal the single-threaded
    oracle at *some* version within the query's [start, end] window.

    This leans on two implementation guarantees: ``data_version`` and
    the visible data are published in one reference swap (so sampling
    the version before and after a query brackets the pinned version),
    and each ``insert``/``delete`` outside a batch commits exactly one
    version.
    """

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete"]),
                st.integers(min_value=0, max_value=len(POOL) - 1),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_concurrent_reads_match_oracle(self, ops):
        network = SemanticNetwork()
        network.create_model("m")
        engine = SparqlEngine(network, default_model="m")
        base_version = network.data_version

        # Single-threaded oracle: state after each prefix of ops.
        state = set()
        oracle = {base_version: frozenset()}
        for i, (op, idx) in enumerate(ops):
            if op == "insert":
                state.add((POOL[idx].subject.value, POOL[idx].object.value))
            else:
                state.discard(
                    (POOL[idx].subject.value, POOL[idx].object.value)
                )
            oracle[base_version + i + 1] = frozenset(state)

        observations = []
        errors = []
        done = threading.Event()
        start = threading.Barrier(3)
        query = f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o }}"

        def reader():
            try:
                start.wait(timeout=5)
                while not done.is_set():
                    v_start = network.data_version
                    rows = engine.select(query).rows
                    v_end = network.data_version
                    got = frozenset(
                        (row[0].value, row[1].value) for row in rows
                    )
                    observations.append((v_start, got, v_end))
            except Exception as exc:  # noqa: BLE001
                errors.append(repr(exc))

        def writer():
            try:
                start.wait(timeout=5)
                for op, idx in ops:
                    if op == "insert":
                        network.insert("m", POOL[idx])
                    else:
                        network.delete("m", POOL[idx])
            except Exception as exc:  # noqa: BLE001
                errors.append(repr(exc))
            finally:
                done.set()

        threads = [
            threading.Thread(target=reader),
            threading.Thread(target=reader),
            threading.Thread(target=writer),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
            assert not t.is_alive()
        assert errors == []
        assert network.data_version == base_version + len(ops)

        for v_start, got, v_end in observations:
            assert any(
                oracle.get(v) == got for v in range(v_start, v_end + 1)
            ), (
                f"result {sorted(got)} matches no version in "
                f"[{v_start}, {v_end}]: "
                f"{[sorted(oracle.get(v, ())) for v in range(v_start, v_end + 1)]}"
            )


class TestPageSplitImmutability:
    """Pinned snapshots survive page splits and rewrites byte-for-byte.

    The columnar page layer makes snapshot capture page-granular COW:
    a writer that splits or thaws a page must do so on a *private*
    copy.  These tests pin a snapshot, hammer the live network until
    splits demonstrably happen (tiny ``REPRO_PAGE_SIZE``), and assert
    the snapshot's batched scans and the packed bytes of every page it
    captured are identical before and after.
    """

    def _published_pages(self, snap_model):
        """Every frozen page segment reachable from a snapshot model."""
        pages = []
        for spec in snap_model.index_specs:
            index = snap_model.index(spec)
            pages.extend(
                seg
                for seg in index._paged.segments
                if type(seg) is not list
            )
        return pages

    def _batched_scan(self, snap_model):
        return [
            list(batch)
            for batch in snap_model.scan_row_batches(
                (None, None, None, None), (0, 1, 2, 3)
            )
        ]

    def test_pinned_batched_scans_survive_page_splits(self, monkeypatch):
        # Tiny pages: page boundaries (and therefore splits) everywhere.
        # The env var is read when each index's PagedKeys is built, so
        # it must be set before the network exists.
        monkeypatch.setenv("REPRO_PAGE_SIZE", "4")
        network = SemanticNetwork()
        network.create_model("m")
        for i in range(40):
            network.insert("m", Quad(ex(f"s{i:03d}"), ex("p"), ex(f"o{i:03d}")))

        snap = network.snapshot()
        model = snap.model("m")
        pages = self._published_pages(model)
        # The snapshot really is backed by frozen pages, not raw runs.
        assert pages
        payloads = [page.tobytes() for page in pages]
        rows = self._batched_scan(model)
        assert sum(len(batch) for batch in rows) == 40

        spec = model.index_specs[0]
        segments_at_pin = len(model.index(spec)._paged.segments)

        # Mutate until splits/rewrites occur: interleave fresh subjects
        # between the pinned ones (splits runs mid-page) and delete a
        # swath of the originals (thaws the pages holding them).
        for i in range(40):
            network.insert(
                "m", Quad(ex(f"s{i:03d}a"), ex("q"), ex(f"v{i:03d}"))
            )
        for i in range(0, 40, 2):
            assert network.delete(
                "m", Quad(ex(f"s{i:03d}"), ex("p"), ex(f"o{i:03d}"))
            )

        live_paged = network.model("m").index(spec)._paged
        # The writer's structure demonstrably changed underneath...
        assert len(live_paged.segments) > segments_at_pin
        live_ids = {id(segment) for segment in live_paged.segments}
        assert any(id(page) not in live_ids for page in pages), (
            "expected at least one pinned page to have been thawed or "
            "rewritten by the writer"
        )

        # ...while the pinned snapshot is byte-identical: same batched
        # scan output, and not one byte of any captured page moved.
        assert self._batched_scan(model) == rows
        assert [page.tobytes() for page in pages] == payloads

    def test_snapshot_scans_identical_across_checkpoint(self, monkeypatch):
        # A checkpoint rewrites the live pages wholesale; the pinned
        # snapshot must not notice.
        monkeypatch.setenv("REPRO_PAGE_SIZE", "4")
        network = SemanticNetwork()
        network.create_model("m")
        for i in range(24):
            network.insert("m", Quad(ex(f"s{i:02d}"), ex("p"), ex(f"o{i:02d}")))
        snap = network.snapshot()
        model = snap.model("m")
        rows = self._batched_scan(model)
        payloads = [p.tobytes() for p in self._published_pages(model)]

        for i in range(24, 96):
            network.insert("m", Quad(ex(f"s{i:02d}"), ex("p"), ex(f"o{i:02d}")))
        if hasattr(network, "checkpoint"):
            network.checkpoint()

        assert self._batched_scan(model) == rows
        assert [p.tobytes() for p in self._published_pages(model)] == payloads
        assert len(quads_of(snap)) == 24
        assert quads_of(snap) <= quads_of(network)
