"""Tests for the physical operator layer and the plan cache.

Covers the pull-based iterator behaviour the refactor exists for —
streaming early termination under LIMIT — plus plan compilation,
rendering, and the engine's LRU plan cache with data-version
invalidation.
"""

import pytest

from repro.obs import metrics
from repro.rdf import IRI, Literal, Quad
from repro.sparql import SparqlEngine
from repro.sparql.executor import compile_query
from repro.sparql.parser import Parser
from repro.sparql.physical import (
    ExecContext,
    PatternJoinOp,
    SliceOp,
    compile_plan,
    physical_to_dict,
    render_physical,
)
from repro.sparql.plancache import PlanCache
from repro.store import SemanticNetwork

EX = "http://ex/"
_parser = Parser({"ex": EX})


def ex(name: str) -> IRI:
    return IRI(EX + name)


def chain_engine(n: int = 50):
    """A long follows-chain: v0 -> v1 -> ... -> vn, each with a name."""
    network = SemanticNetwork()
    network.create_model("m")
    quads = []
    for i in range(n):
        quads.append(Quad(ex(f"v{i}"), ex("follows"), ex(f"v{i+1}")))
        quads.append(Quad(ex(f"v{i}"), ex("name"), Literal(f"name{i}")))
    network.bulk_load("m", quads)
    return SparqlEngine(network, prefixes={"ex": EX}, default_model="m")


def compiled_for(engine, text, model="m"):
    ast = engine._parse_query(text)
    return compile_query(
        ast, engine.network, engine.network.model(model), model
    )


# ----------------------------------------------------------------------
# Physical plan shape
# ----------------------------------------------------------------------


class TestCompilation:
    def test_first_scan_then_nested_loop_joins(self):
        engine = chain_engine(5)
        compiled = compiled_for(
            engine,
            "SELECT ?a ?n WHERE { ?a ex:follows ?b . ?a ex:name ?n }",
        )
        ops = [op for op in _walk(compiled.root) if isinstance(op, PatternJoinOp)]
        # Innermost pattern scans; the second joins against it.
        assert [op.name for op in reversed(ops)] == [
            "IndexScan",
            "IndexNestedLoopJoin",
        ]

    def test_limit_compiles_to_streaming_slice(self):
        engine = chain_engine(5)
        compiled = compiled_for(
            engine, "SELECT ?a WHERE { ?a ex:follows ?b } LIMIT 2"
        )
        slices = [op for op in _walk(compiled.root) if isinstance(op, SliceOp)]
        assert len(slices) == 1
        assert slices[0].name == "StreamingSlice"

    def test_missing_constant_compiles_to_empty(self):
        engine = chain_engine(3)
        compiled = compiled_for(
            engine, "SELECT ?x WHERE { ?x ex:follows ex:nowhere }"
        )
        ctx = ExecContext(engine.network, engine.network.model("m"))
        assert list(compiled.root.run(ctx)) == []

    def test_render_and_dict_agree(self):
        engine = chain_engine(3)
        compiled = compiled_for(
            engine,
            "SELECT ?a WHERE { ?a ex:follows ?b FILTER (?a != ?b) } LIMIT 1",
        )
        text = render_physical(compiled.root)
        document = physical_to_dict(compiled.root)

        def labels(node):
            yield node["label"]
            for child in node.get("children", ()):
                yield from labels(child)

        for label in labels(document):
            assert label in text


def _walk(op):
    yield op
    for child in op.children():
        yield from _walk(child)


# ----------------------------------------------------------------------
# Streaming early termination
# ----------------------------------------------------------------------


class TestEarlyTermination:
    def test_limit_scans_fewer_index_entries(self):
        """The tentpole's headline behaviour: LIMIT queries terminate
        early instead of materializing every intermediate relation."""
        engine = chain_engine(200)
        query_all = (
            "SELECT ?a ?c WHERE { ?a ex:follows ?b . ?b ex:follows ?c }"
        )
        query_limited = query_all + " LIMIT 3"

        def scanned(text):
            with metrics.enabled(fresh=True) as registry:
                engine.select(text)
                return registry.counter("index.rows_scanned")

        full = scanned(query_all)
        limited = scanned(query_limited)
        assert limited < full / 2  # at least 2x fewer entries touched

    def test_limited_results_are_a_prefix_sized_subset(self):
        engine = chain_engine(30)
        all_rows = set(
            engine.select(
                "SELECT ?a WHERE { ?a ex:follows ?b }"
            ).rows
        )
        limited = engine.select(
            "SELECT ?a WHERE { ?a ex:follows ?b } LIMIT 4"
        )
        assert len(limited.rows) == 4
        assert set(limited.rows) <= all_rows

    def test_ask_streams_first_row_only(self):
        engine = chain_engine(200)
        with metrics.enabled(fresh=True) as registry:
            assert engine.ask("ASK { ?a ex:follows ?b }")
            assert registry.counter("index.rows_scanned") <= 2

    def test_instrumented_mode_matches_streaming_results(self):
        engine = chain_engine(20)
        text = (
            "SELECT ?a ?n WHERE { ?a ex:follows ?b . ?a ex:name ?n } "
            "ORDER BY ?n LIMIT 5"
        )
        plain = engine.select(text)
        analysis = engine.explain(text, analyze=True)
        assert analysis.result.rows == plain.rows


# ----------------------------------------------------------------------
# Plan cache
# ----------------------------------------------------------------------


class TestPlanCache:
    def test_second_run_hits(self):
        engine = chain_engine(5)
        text = "SELECT ?a WHERE { ?a ex:follows ?b }"
        engine.select(text)
        engine.select(text)
        stats = engine.plan_cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_store_mutation_invalidates(self):
        engine = chain_engine(5)
        text = "SELECT ?a WHERE { ?a ex:follows ?b }"
        before = len(engine.select(text).rows)
        engine.network.insert(
            "m", Quad(ex("new"), ex("follows"), ex("v0"))
        )
        after = engine.select(text)
        assert len(after.rows) == before + 1
        stats = engine.plan_cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 2

    def test_direct_network_write_is_seen(self):
        """Even writes bypassing the engine bump data_version."""
        engine = chain_engine(3)
        text = "SELECT ?x WHERE { ?x ex:kind ex:added }"
        assert engine.select(text).rows == []
        engine.network.insert("m", Quad(ex("n"), ex("kind"), ex("added")))
        assert len(engine.select(text).rows) == 1

    def test_eviction_counts(self):
        cache = PlanCache(capacity=2)
        assert cache.put("a", 1, "plan-a") == 0
        assert cache.put("b", 1, "plan-b") == 0
        assert cache.put("c", 1, "plan-c") == 1
        assert cache.get("a", 1) is None  # LRU victim
        assert cache.get("c", 1) == "plan-c"
        assert cache.stats()["evictions"] == 1

    def test_stale_version_is_a_miss_and_dropped(self):
        cache = PlanCache()
        cache.put("k", 1, "old")
        assert cache.get("k", 2) is None
        assert len(cache) == 0
        assert cache.stats()["misses"] == 1

    def test_counters_reach_result_stats(self):
        engine = chain_engine(5)
        engine.collect_stats = True
        text = "SELECT ?a WHERE { ?a ex:follows ?b }"
        first = engine.select(text)
        assert first.stats.counter("plan_cache.misses") == 1
        second = engine.select(text)
        assert second.stats.counter("plan_cache.hits") == 1
        assert second.stats.plan_cache()["hits"] == 1

    def test_counters_reach_registry(self):
        engine = chain_engine(5)
        text = "SELECT ?a WHERE { ?a ex:follows ?b }"
        with metrics.enabled(fresh=True) as registry:
            engine.select(text)
            engine.select(text)
            assert registry.counter("plan_cache.misses") == 1
            assert registry.counter("plan_cache.hits") == 1

    def test_prepared_queries_bypass_cache(self):
        engine = chain_engine(5)
        prepared = engine.prepare("SELECT ?a WHERE { ?a ex:follows ?b }")
        prepared.run()
        prepared.run()
        stats = engine.plan_cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_same_text_different_model_is_distinct(self):
        engine = chain_engine(5)
        engine.network.create_model("other")
        text = "SELECT ?a WHERE { ?a ex:follows ?b }"
        assert len(engine.select(text).rows) == 5
        assert engine.select(text, model="other").rows == []
        assert engine.plan_cache.stats()["misses"] == 2
