"""Tests for the synthetic Twitter ego-network generator."""

import pytest

from repro.datasets.twitter import (
    TwitterConfig,
    generate_twitter,
    hub_vertex,
    selective_tag,
)


@pytest.fixture(scope="module")
def graph():
    return generate_twitter(TwitterConfig(egos=10, seed=7))


class TestStructure:
    def test_deterministic(self):
        config = TwitterConfig(egos=4, seed=123)
        a = generate_twitter(config)
        b = generate_twitter(config)
        assert a.vertex_count == b.vertex_count
        assert a.edge_count == b.edge_count
        assert sorted(
            (e.source, e.label, e.target) for e in a.edges()
        ) == sorted((e.source, e.label, e.target) for e in b.edges())

    def test_different_seeds_differ(self):
        a = generate_twitter(TwitterConfig(egos=4, seed=1))
        b = generate_twitter(TwitterConfig(egos=4, seed=2))
        assert a.edge_count != b.edge_count or a.vertex_count != b.vertex_count

    def test_labels_follow_the_recipe(self, graph):
        assert set(graph.labels()) == {"follows", "knows"}

    def test_follows_dominate_knows(self, graph):
        """Table 6 analogue: follows edges far outnumber knows edges."""
        follows = sum(1 for e in graph.edges() if e.label == "follows")
        knows = sum(1 for e in graph.edges() if e.label == "knows")
        assert follows > 2 * knows

    def test_edge_kvs_are_endpoint_intersections(self, graph):
        for edge in list(graph.edges())[:200]:
            source_kvs = set(graph.vertex(edge.source).kv_pairs())
            target_kvs = set(graph.vertex(edge.target).kv_pairs())
            assert set(edge.kv_pairs()) == source_kvs & target_kvs

    def test_node_kv_keys(self, graph):
        assert set(graph.vertex_keys()) <= {"hasTag", "refs"}

    def test_tag_values_start_with_hash(self, graph):
        for vertex in graph.vertices():
            for value in vertex.property_values("hasTag"):
                assert value.startswith("#")
            for value in vertex.property_values("refs"):
                assert value.startswith("@")

    def test_edge_kvs_exceed_node_kvs_at_default_scale(self):
        """Table 6's eKV > nKV characteristic."""
        g = generate_twitter()
        assert g.edge_kv_count() > g.vertex_kv_count()

    def test_highly_connected(self, graph):
        """Mean degree well above 1 (the paper: ~24 edges per node)."""
        assert graph.edge_count / graph.vertex_count > 3

    def test_in_degree_tail_heavier_than_out(self):
        """Figure 4's shape: max in-degree >= max out-degree when KV
        literal sharing is counted at RDF level; at the PG level we at
        least require a heavy tail on in-degrees."""
        g = generate_twitter()
        out_hist, in_hist = g.degree_distribution()
        assert max(in_hist) >= 1
        assert max(out_hist) >= 1


class TestHelpers:
    def test_hub_vertex_has_max_outdegree(self, graph):
        hub = hub_vertex(graph)
        best = max(graph.out_degree(v.id, "follows") for v in graph.vertices())
        assert graph.out_degree(hub, "follows") == best

    def test_hub_vertex_empty_graph(self):
        from repro.propertygraph import PropertyGraph

        with pytest.raises(ValueError):
            hub_vertex(PropertyGraph())

    def test_selective_tag_near_target(self, graph):
        tag = selective_tag(graph, target_fraction=0.05)
        count = sum(
            1 for v in graph.vertices() if v.has_property_value("hasTag", tag)
        )
        assert 1 <= count <= graph.vertex_count * 0.25

    def test_selective_tag_deterministic(self, graph):
        assert selective_tag(graph, 0.05) == selective_tag(graph, 0.05)


class TestConfigValidation:
    def test_bad_egos(self):
        with pytest.raises(ValueError):
            generate_twitter(TwitterConfig(egos=0))

    def test_bad_probability(self):
        with pytest.raises(ValueError):
            generate_twitter(TwitterConfig(follow_probability=1.5))

    def test_bad_members(self):
        with pytest.raises(ValueError):
            generate_twitter(TwitterConfig(mean_members=1))

    def test_pool_smaller_than_topics(self):
        with pytest.raises(ValueError):
            generate_twitter(TwitterConfig(feature_pool=5, topics_per_ego=10))
