"""Unit tests for the procedural (Gremlin-style) traversal API."""

import pytest

from repro.propertygraph import PropertyGraph, Traversal
from repro.propertygraph.traversal import (
    count_paths,
    count_triangles,
    degree_histogram,
)


@pytest.fixture
def graph():
    """a->b->c->a follows-triangle plus a->c, d isolated-ish."""
    g = PropertyGraph()
    for vid, name in [(1, "a"), (2, "b"), (3, "c"), (4, "d")]:
        g.add_vertex(vid, {"name": name})
    g.add_edge(1, "follows", 2)
    g.add_edge(2, "follows", 3)
    g.add_edge(3, "follows", 1)
    g.add_edge(1, "follows", 3)
    g.add_edge(1, "knows", 4)
    return g


class TestTraversalPipeline:
    def test_vertices_start(self, graph):
        assert Traversal(graph).vertices().count() == 4

    def test_has_filter(self, graph):
        ids = Traversal(graph).vertices().has("name", "a").ids()
        assert ids == [1]

    def test_out_step(self, graph):
        ids = sorted(Traversal(graph).vertex(1).out("follows").ids())
        assert ids == [2, 3]

    def test_out_without_label(self, graph):
        assert Traversal(graph).vertex(1).out().count() == 3

    def test_in_step(self, graph):
        ids = sorted(Traversal(graph).vertex(3).in_("follows").ids())
        assert ids == [1, 2]

    def test_both_step(self, graph):
        assert Traversal(graph).vertex(1).both("follows").count() == 3

    def test_chained_two_hops(self, graph):
        ids = sorted(Traversal(graph).vertex(1).out("follows").out("follows").ids())
        assert ids == [1, 3]

    def test_dedup(self, graph):
        trav = Traversal(graph).vertex(1).out("follows").out("follows").dedup()
        assert sorted(trav.ids()) == [1, 3]

    def test_values(self, graph):
        names = sorted(Traversal(graph).vertex(1).out("follows").values("name"))
        assert names == ["b", "c"]

    def test_filter_predicate(self, graph):
        ids = (
            Traversal(graph)
            .vertices()
            .filter(lambda v: v.id % 2 == 0)
            .ids()
        )
        assert sorted(ids) == [2, 4]

    def test_has_key(self, graph):
        graph.vertex(1).set_property("vip", True)
        assert Traversal(graph).vertices().has_key("vip").ids() == [1]

    def test_out_edges_terminal(self, graph):
        labels = sorted(e.label for e in Traversal(graph).vertex(1).out_edges())
        assert labels == ["follows", "follows", "knows"]


class TestAnalytics:
    def test_count_paths_one_hop(self, graph):
        assert count_paths(graph, 1, "follows", 1) == 2

    def test_count_paths_two_hops(self, graph):
        # 1->2->3 and 1->3->1: two 2-hop paths.
        assert count_paths(graph, 1, "follows", 2) == 2

    def test_count_paths_three_hops(self, graph):
        # 1->2->3->1 and 1->3->1->2 and 1->3->1->3: three 3-hop paths.
        assert count_paths(graph, 1, "follows", 3) == 3

    def test_count_paths_no_edges(self, graph):
        assert count_paths(graph, 4, "follows", 2) == 0

    def test_count_paths_rejects_zero_hops(self, graph):
        with pytest.raises(ValueError):
            count_paths(graph, 1, "follows", 0)

    def test_count_triangles(self, graph):
        # One cyclic triangle 1->2->3->1, counted once per rotation.
        assert count_triangles(graph, "follows") == 3

    def test_count_triangles_other_label(self, graph):
        assert count_triangles(graph, "knows") == 0

    def test_degree_histogram(self, graph):
        in_hist, out_hist = degree_histogram(graph, ["follows"])
        # out-degrees: v1=2, v2=1, v3=1 -> {2:1, 1:2}
        assert out_hist == {2: 1, 1: 2}
        # in-degrees: v2=1, v3=2, v1=1 -> {1:2, 2:1}
        assert in_hist == {1: 2, 2: 1}

    def test_degree_histogram_all_labels(self, graph):
        in_hist, out_hist = degree_histogram(graph)
        assert out_hist[3] == 1  # vertex 1 has 3 outgoing edges in total
