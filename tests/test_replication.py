"""Tests for WAL-shipping replication: protocol, convergence, failover.

The chaos schedules (wire faults, kill/restart loops) live in
``test_replication_chaos.py`` under ``-m chaos``; this file covers the
protocol layer, leader/follower convergence, the staleness contract,
sequence-number fail-stop, promote, and the crash-at-every-frame /
linearizability property tests.
"""

import json
import os
import socket
import threading
import time
import urllib.error
import urllib.parse
import urllib.request

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.rdf import IRI, Quad
from repro.sparql import SparqlEngine
from repro.server import SparqlServer
from repro.store.durable import (
    DurableNetwork,
    ReplicationSequenceError,
    open_durable,
)
from repro.store.replication import (
    MessageStream,
    ProtocolError,
    ReplicationFollower,
    ReplicationLeader,
    RoleError,
    promote,
    read_replication_state,
    state_digest,
    write_replication_state,
)
from repro.store.replication import protocol as proto
from repro.testing.faults import SimulatedCrash, torn_file_factory

EX = "http://ex/"


def ex(name):
    return IRI(EX + name)


def quad(n):
    return Quad(ex(f"s{n}"), ex("p"), ex(f"o{n}"))


def converge(leader_net, follower_net, timeout=10.0):
    """Wait until the follower reaches the leader's version; assert it."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if (
            follower_net.data_version >= leader_net.data_version
            and follower_net.applied_seq >= leader_net.applied_seq
        ):
            break
        time.sleep(0.01)
    assert follower_net.data_version == leader_net.data_version, (
        f"follower at v{follower_net.data_version}, "
        f"leader at v{leader_net.data_version}"
    )
    assert state_digest(follower_net.snapshot()) == state_digest(
        leader_net.snapshot()
    )


@pytest.fixture
def leader_pair(tmp_path):
    """(leader_network, leader) with a model created, torn down after."""
    network = open_durable(str(tmp_path / "leader"))
    network.create_model("m")
    leader = ReplicationLeader(network, heartbeat_interval=0.1).start()
    try:
        yield network, leader
    finally:
        leader.stop()
        network.close()


def start_follower(tmp_path, leader, name="follower"):
    network = open_durable(str(tmp_path / name))
    follower = ReplicationFollower(network, *leader.address).start()
    return network, follower


# ----------------------------------------------------------------------
# Protocol layer
# ----------------------------------------------------------------------


class TestProtocol:
    def socketpair_streams(self):
        a, b = socket.socketpair()
        return MessageStream(a), MessageStream(b)

    def test_message_roundtrip(self):
        a, b = self.socketpair_streams()
        message = proto.frame_message({"op": "insert", "seq": 7, "v": 3})
        a.send(message)
        assert b.recv() == message
        a.close()
        b.close()

    def test_magic_exchange(self):
        a, b = self.socketpair_streams()
        a.send_magic()
        b.expect_magic()
        a.close()
        b.close()

    def test_bad_magic_rejected(self):
        a, b = self.socketpair_streams()
        a._sock.sendall(b"NOTMAGIC")
        with pytest.raises(ProtocolError, match="magic"):
            b.expect_magic()
        a.close()
        b.close()

    def test_corrupt_frame_is_protocol_error(self):
        import struct
        import zlib

        a, b = self.socketpair_streams()
        payload = json.dumps({"type": "heartbeat"}).encode()
        bad_crc = zlib.crc32(payload) ^ 0xFFFF
        a._sock.sendall(struct.pack("<II", len(payload), bad_crc) + payload)
        with pytest.raises(ProtocolError, match="checksum"):
            b.recv()
        a.close()
        b.close()

    def test_torn_frame_is_protocol_error(self):
        import struct
        import zlib

        a, b = self.socketpair_streams()
        payload = json.dumps({"type": "heartbeat"}).encode()
        frame = struct.pack(
            "<II", len(payload), zlib.crc32(payload)
        ) + payload
        a._sock.sendall(frame[: len(frame) - 4])
        a.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            b.recv()
        b.close()

    def test_oversized_length_rejected_without_allocation(self):
        import struct

        a, b = self.socketpair_streams()
        a._sock.sendall(struct.pack("<II", 2**31, 0))
        with pytest.raises(ProtocolError, match="limit"):
            b.recv()
        a.close()
        b.close()

    def test_untyped_message_rejected(self):
        a, b = self.socketpair_streams()
        a.send({"type": "x"})  # fine
        b.recv()
        import struct
        import zlib

        payload = b"[1,2,3]"
        a._sock.sendall(
            struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
        )
        with pytest.raises(ProtocolError, match="typed"):
            b.recv()
        a.close()
        b.close()


# ----------------------------------------------------------------------
# Sequence stamping and recovery metadata (the durable-store substrate)
# ----------------------------------------------------------------------


class TestSeqStamping:
    def test_records_are_seq_and_version_stamped(self, tmp_path):
        from repro.store.wal import read_wal

        network = open_durable(str(tmp_path / "d"))
        network.create_model("m")
        network.insert("m", quad(1))
        with network.write_batch():
            network.insert("m", quad(2))
            network.insert("m", quad(3))
        records, _ = read_wal(network.wal_path)
        network.close()
        assert [r["seq"] for r in records] == [1, 2, 3, 4]
        # A fresh store opens at v1; create_model commits v2, the
        # single insert v3, and the two batched inserts share v4.
        assert [r["v"] for r in records] == [2, 3, 4, 4]

    def test_noop_journaled_for_recordless_batch(self, tmp_path):
        from repro.store.wal import read_wal

        network = open_durable(str(tmp_path / "d"))
        network.create_model("m")
        network.insert("m", quad(1))
        network.insert("m", quad(1))  # duplicate: no data record
        records, _ = read_wal(network.wal_path)
        network.close()
        assert [r["op"] for r in records] == [
            "create_model", "insert", "noop"
        ]
        # The noop still advances seq and carries the committed version.
        assert records[-1]["seq"] == 3
        assert records[-1]["v"] == network.data_version

    def test_version_survives_restart(self, tmp_path):
        network = open_durable(str(tmp_path / "d"))
        network.create_model("m")
        network.insert("m", quad(1))
        version, seq = network.data_version, network.applied_seq
        network.close()
        reopened = open_durable(str(tmp_path / "d"))
        assert reopened.data_version == version
        assert reopened.applied_seq == seq
        reopened.close()

    def test_version_survives_checkpoint_and_restart(self, tmp_path):
        network = open_durable(str(tmp_path / "d"))
        network.create_model("m")
        network.insert("m", quad(1))
        network.checkpoint()
        network.insert("m", quad(2))
        version, seq = network.data_version, network.applied_seq
        network.close()
        reopened = open_durable(str(tmp_path / "d"))
        assert reopened.data_version == version
        assert reopened.applied_seq == seq
        assert reopened.recovery_stats.base_seq > 0
        reopened.close()

    def test_checkpoint_bumps_generation(self, tmp_path):
        network = open_durable(str(tmp_path / "d"))
        network.create_model("m")
        generation = network.wal_generation
        network.checkpoint()
        assert network.wal_generation == generation + 1
        assert network.wal_base_seq == network.applied_seq
        network.close()


class TestApplyReplicated:
    def make_pair(self, tmp_path):
        source = open_durable(str(tmp_path / "src"))
        target = open_durable(str(tmp_path / "dst"))
        return source, target

    def records_of(self, network):
        from repro.store.wal import read_wal

        records, _ = read_wal(network.wal_path)
        return records

    def group_by_version(self, records):
        groups = {}
        for record in records:
            groups.setdefault(record["v"], []).append(record)
        return [groups[v] for v in sorted(groups)]

    def test_apply_groups_reaches_identical_state(self, tmp_path):
        source, target = self.make_pair(tmp_path)
        source.create_model("m")
        source.insert("m", quad(1))
        with source.write_batch():
            source.insert("m", quad(2))
            source.insert("m", quad(3))
        for group in self.group_by_version(self.records_of(source)):
            target.apply_replicated(group, group[0]["v"])
        assert target.data_version == source.data_version
        assert target.applied_seq == source.applied_seq
        assert state_digest(target.snapshot()) == state_digest(
            source.snapshot()
        )
        # The follower's WAL holds the records verbatim.
        assert self.records_of(target) == self.records_of(source)
        source.close()
        target.close()

    def test_duplicate_group_is_skipped_exactly(self, tmp_path):
        source, target = self.make_pair(tmp_path)
        source.create_model("m")
        source.insert("m", quad(1))
        groups = self.group_by_version(self.records_of(source))
        for group in groups:
            target.apply_replicated(group, group[0]["v"])
        before = state_digest(target.snapshot())
        version_before = target.data_version
        # Redelivery of every group: all duplicates, all skipped.
        for group in groups:
            assert target.apply_replicated(group, group[0]["v"]) == 0
        assert target.data_version == version_before
        assert state_digest(target.snapshot()) == before
        source.close()
        target.close()

    def test_sequence_gap_is_fail_stop(self, tmp_path):
        source, target = self.make_pair(tmp_path)
        source.create_model("m")
        source.insert("m", quad(1))
        source.insert("m", quad(2))
        groups = self.group_by_version(self.records_of(source))
        target.apply_replicated(groups[0], groups[0][0]["v"])
        # Skip group 2, deliver group 3: a gap — never applied silently.
        with pytest.raises(ReplicationSequenceError):
            target.apply_replicated(groups[2], groups[2][0]["v"])
        source.close()
        target.close()

    def test_empty_group_rejected(self, tmp_path):
        _, target = self.make_pair(tmp_path)
        with pytest.raises(ReplicationSequenceError):
            target.apply_replicated([], 1)
        target.close()


# ----------------------------------------------------------------------
# End-to-end: leader + followers over real sockets
# ----------------------------------------------------------------------


class TestEndToEnd:
    def test_two_followers_converge_on_write_storm(
        self, tmp_path, leader_pair
    ):
        leader_net, leader = leader_pair
        f1_net, f1 = start_follower(tmp_path, leader, "f1")
        f2_net, f2 = start_follower(tmp_path, leader, "f2")
        try:
            for n in range(60):
                leader_net.insert("m", quad(n))
            converge(leader_net, f1_net)
            converge(leader_net, f2_net)
            assert f1.status()["lag_frames"] == 0
        finally:
            f1.stop()
            f2.stop()
            f1_net.close()
            f2_net.close()

    def test_late_follower_bootstraps_after_checkpoint(
        self, tmp_path, leader_pair
    ):
        leader_net, leader = leader_pair
        for n in range(20):
            leader_net.insert("m", quad(n))
        leader_net.checkpoint()  # WAL empty: a new follower must resync
        f_net, follower = start_follower(tmp_path, leader)
        try:
            converge(leader_net, f_net)
            assert follower.bootstraps == 1
            # Streaming continues after the bootstrap.
            leader_net.insert("m", quad(99))
            converge(leader_net, f_net)
        finally:
            follower.stop()
            f_net.close()

    def test_follower_restart_resumes_from_durable_cursor(
        self, tmp_path, leader_pair
    ):
        leader_net, leader = leader_pair
        f_net, follower = start_follower(tmp_path, leader)
        for n in range(10):
            leader_net.insert("m", quad(n))
        converge(leader_net, f_net)
        follower.stop()
        f_net.close()
        for n in range(10, 20):
            leader_net.insert("m", quad(n))
        f_net = open_durable(str(tmp_path / "follower"))
        follower = ReplicationFollower(f_net, *leader.address).start()
        try:
            converge(leader_net, f_net)
            assert follower.bootstraps == 0  # resumed, not resynced
        finally:
            follower.stop()
            f_net.close()

    def test_follower_survives_leader_checkpoint_mid_stream(
        self, tmp_path, leader_pair
    ):
        leader_net, leader = leader_pair
        f_net, follower = start_follower(tmp_path, leader)
        try:
            for n in range(10):
                leader_net.insert("m", quad(n))
            converge(leader_net, f_net)
            leader_net.checkpoint()
            for n in range(10, 20):
                leader_net.insert("m", quad(n))
            converge(leader_net, f_net)
        finally:
            follower.stop()
            f_net.close()

    def test_leader_crash_between_append_and_send(self, tmp_path):
        """Records fsynced but never shipped survive a leader restart
        and reach the follower afterwards — acknowledged writes are
        never lost."""
        leader_dir = str(tmp_path / "leader")
        leader_net = open_durable(leader_dir)
        leader_net.create_model("m")
        leader = ReplicationLeader(leader_net, heartbeat_interval=0.1).start()
        f_net, follower = start_follower(tmp_path, leader)
        try:
            leader_net.insert("m", quad(1))
            converge(leader_net, f_net)
            # "Crash": stop the sender before it ships the next write.
            leader.stop()
            leader_net.insert("m", quad(2))  # acknowledged (fsynced)
            leader_net.close()  # no checkpoint — the WAL is the truth
            leader_net = open_durable(leader_dir)
            leader = ReplicationLeader(
                leader_net,
                port=leader.port,
                heartbeat_interval=0.1,
            ).start()
            converge(leader_net, f_net, timeout=15.0)
            assert f_net.contains("m", quad(2))
        finally:
            follower.stop()
            f_net.close()
            leader.stop()
            leader_net.close()


# ----------------------------------------------------------------------
# Staleness contract over HTTP
# ----------------------------------------------------------------------


def http_get(port, path, headers=None):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", headers=headers or {}
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, dict(response.headers), (
            response.read().decode("utf-8")
        )


class TestStalenessContract:
    def test_read_your_writes_with_min_version_token(
        self, tmp_path, leader_pair
    ):
        leader_net, leader = leader_pair
        f_net, follower = start_follower(tmp_path, leader)
        engine = SparqlEngine(f_net, default_model="m")
        server = SparqlServer(
            engine, replication=follower, staleness_wait=5.0
        ).start()
        try:
            leader_net.insert("m", quad(7))
            token = leader_net.data_version  # the write's version token
            query = urllib.parse.quote(
                "SELECT ?o WHERE { <http://ex/s7> <http://ex/p> ?o }"
            )
            status, headers, body = http_get(
                server.port, f"/sparql?query={query}&min-version={token}"
            )
            assert status == 200
            assert int(headers["X-Data-Version"]) >= token
            assert "http://ex/o7" in body
        finally:
            server.stop()
            follower.stop()
            f_net.close()

    def test_unreachable_min_version_is_503_stale_read(
        self, tmp_path, leader_pair
    ):
        leader_net, leader = leader_pair
        f_net, follower = start_follower(tmp_path, leader)
        engine = SparqlEngine(f_net, default_model="m")
        server = SparqlServer(
            engine, replication=follower, staleness_wait=0.1
        ).start()
        try:
            wanted = leader_net.data_version + 1000
            query = urllib.parse.quote("SELECT ?s WHERE { ?s ?p ?o }")
            with pytest.raises(urllib.error.HTTPError) as info:
                http_get(
                    server.port,
                    f"/sparql?query={query}&min-version={wanted}",
                )
            assert info.value.code == 503
            payload = json.loads(info.value.read().decode("utf-8"))
            assert payload["error"] == "StaleRead"
            assert payload["min_version"] == wanted
            assert payload["data_version"] < wanted
        finally:
            server.stop()
            follower.stop()
            f_net.close()

    def test_healthz_reports_role_and_lag(self, tmp_path, leader_pair):
        leader_net, leader = leader_pair
        f_net, follower = start_follower(tmp_path, leader)
        engine = SparqlEngine(f_net, default_model="m")
        server = SparqlServer(engine, replication=follower).start()
        try:
            leader_net.insert("m", quad(1))
            converge(leader_net, f_net)
            status, _, body = http_get(server.port, "/healthz")
            assert status == 200
            document = json.loads(body)
            assert document["role"] == "follower"
            assert document["applied_data_version"] == (
                leader_net.data_version
            )
            assert document["replication"]["lag_frames"] == 0
            assert document["replication"]["connected"] is True
        finally:
            server.stop()
            follower.stop()
            f_net.close()

    def test_leader_healthz_reports_followers(self, tmp_path, leader_pair):
        leader_net, leader = leader_pair
        f_net, follower = start_follower(tmp_path, leader)
        engine = SparqlEngine(leader_net, default_model="m")
        server = SparqlServer(engine, replication=leader).start()
        try:
            assert follower.wait_connected(5.0)
            status, _, body = http_get(server.port, "/healthz")
            document = json.loads(body)
            assert document["role"] == "leader"
            assert document["replication"]["epoch"] == 0
        finally:
            server.stop()
            follower.stop()
            f_net.close()


# ----------------------------------------------------------------------
# Failover
# ----------------------------------------------------------------------


class TestFailover:
    def test_promote_preserves_every_acknowledged_write(
        self, tmp_path, leader_pair
    ):
        leader_net, leader = leader_pair
        f_net, follower = start_follower(tmp_path, leader)
        acked = []
        for n in range(25):
            leader_net.insert("m", quad(n))
            acked.append(n)
        converge(leader_net, f_net)
        leader_digest = state_digest(leader_net.snapshot())
        # Leader dies; follower is promoted.
        follower.stop()
        f_net.close()
        summary = promote(str(tmp_path / "follower"))
        assert summary["role"] == "leader"
        assert summary["epoch"] == 1
        promoted = open_durable(str(tmp_path / "follower"))
        try:
            assert state_digest(promoted.snapshot()) == leader_digest
            for n in acked:
                assert promoted.contains("m", quad(n))
            # The new leader serves writes.
            promoted.insert("m", quad(1000))
            assert promoted.contains("m", quad(1000))
        finally:
            promoted.close()

    def test_promoted_directory_refuses_to_follow(self, tmp_path):
        directory = str(tmp_path / "d")
        network = open_durable(directory)
        network.create_model("m")
        network.close()
        promote(directory)
        network = open_durable(directory)
        with pytest.raises(RoleError):
            ReplicationFollower(network, "127.0.0.1", 1)
        network.close()

    def test_promote_twice_is_an_error(self, tmp_path):
        directory = str(tmp_path / "d")
        open_durable(directory).close()
        promote(directory)
        with pytest.raises(RoleError):
            promote(directory)

    def test_old_leader_fences_on_higher_epoch_hello(
        self, tmp_path, leader_pair
    ):
        leader_net, leader = leader_pair
        f_dir = str(tmp_path / "f")
        f_net = open_durable(f_dir)
        write_replication_state(f_dir, "follower", leader.epoch + 1)
        follower = ReplicationFollower(f_net, *leader.address).start()
        try:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and not leader.fenced:
                time.sleep(0.01)
            assert leader.fenced
            assert leader.status()["role"] == "fenced"
            # The follower learned it too (terminal, no reconnect loop).
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and not follower.fenced:
                time.sleep(0.01)
            assert follower.fenced
        finally:
            follower.stop()
            f_net.close()

    def test_replication_state_roundtrip(self, tmp_path):
        directory = str(tmp_path / "d")
        assert read_replication_state(directory) == {
            "role": None, "epoch": 0
        }
        write_replication_state(directory, "follower", 3)
        assert read_replication_state(directory) == {
            "role": "follower", "epoch": 3
        }


# ----------------------------------------------------------------------
# Property tests: crash-at-every-frame, linearizability
# ----------------------------------------------------------------------


def leader_groups(tmp_path, operations):
    """Build a leader log from ops; return its commit groups + digest."""
    source = open_durable(str(tmp_path / "property-src"))
    source.create_model("m")
    for op, n in operations:
        if op == "insert":
            source.insert("m", quad(n))
        else:
            source.delete("m", quad(n))
    from repro.store.wal import read_wal

    records, _ = read_wal(source.wal_path)
    groups = {}
    for record in records:
        groups.setdefault(record["v"], []).append(record)
    ordered = [groups[v] for v in sorted(groups)]
    digest = state_digest(source.snapshot())
    final_version = source.data_version
    source.close()
    return ordered, digest, final_version


class TestCrashAtEveryFrame:
    def test_follower_crash_at_every_byte_offset_converges(self, tmp_path):
        """Mirror of the leader-side crash-at-every-WAL-offset suite:
        tear the follower's local WAL at every byte budget while it
        applies replicated groups; recovery + redelivery must always
        converge to the leader's digest, never diverge."""
        operations = [("insert", n) for n in range(6)] + [
            ("delete", 2), ("insert", 7)
        ]
        groups, want_digest, want_version = leader_groups(
            tmp_path, operations
        )
        offset = 8  # start past the magic header
        crashes = 0
        while True:
            directory = str(tmp_path / f"crash-{offset}")
            network = DurableNetwork(
                directory, file_factory=torn_file_factory(offset)
            )
            crashed = False
            try:
                for group in groups:
                    network.apply_replicated(group, group[0]["v"])
            except SimulatedCrash:
                crashed = True
                crashes += 1
            finally:
                try:
                    network.close()
                except SimulatedCrash:
                    crashed = True
            if not crashed:
                # The budget outgrew the whole log: final iteration.
                reopened = open_durable(directory)
                assert state_digest(reopened.snapshot()) == want_digest
                reopened.close()
                break
            # Recover on the torn prefix, then redeliver everything:
            # duplicates are skipped by sequence, the tail is applied.
            reopened = open_durable(directory)
            for group in groups:
                reopened.apply_replicated(group, group[0]["v"])
            assert reopened.data_version == want_version
            assert state_digest(reopened.snapshot()) == want_digest
            reopened.close()
            offset += 7  # sweep offsets (stride keeps runtime sane)
        assert crashes > 5  # the sweep exercised real torn states


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete"]),
            st.integers(min_value=0, max_value=9),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_follower_reads_at_version_v_equal_leader_snapshot_at_v(
    tmp_path_factory, operations
):
    """Linearizability: for every version the follower publishes, its
    state digest equals the leader's digest at that same version —
    version tokens mean the same thing on both sides."""
    tmp_path = tmp_path_factory.mktemp("linearizability")
    source = open_durable(str(tmp_path / "src"))
    source.create_model("m")
    leader_history = {source.data_version: state_digest(source.snapshot())}
    for op, n in operations:
        if op == "insert":
            source.insert("m", quad(n))
        else:
            source.delete("m", quad(n))
        leader_history[source.data_version] = state_digest(source.snapshot())
    from repro.store.wal import read_wal

    records, _ = read_wal(source.wal_path)
    groups = {}
    for record in records:
        groups.setdefault(record["v"], []).append(record)

    target = open_durable(str(tmp_path / "dst"))
    follower_history = {}
    for version in sorted(groups):
        target.apply_replicated(groups[version], version)
        follower_history[target.data_version] = state_digest(
            target.snapshot()
        )
    for version, digest in follower_history.items():
        assert leader_history[version] == digest, (
            f"divergence at version {version}"
        )
    source.close()
    target.close()
