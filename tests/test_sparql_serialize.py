"""Tests for the SPARQL result serializers (JSON / CSV formats)."""

import json

import pytest

from repro.rdf import BlankNode, IRI, Literal, XSD
from repro.sparql.results import SelectResult
from repro.sparql.serialize import ask_to_json, to_csv, to_json


@pytest.fixture
def result():
    return SelectResult(
        ("x", "name", "age"),
        [
            (IRI("http://pg/v1"), Literal("Amy"), Literal("23", XSD.int)),
            (BlankNode("b0"), Literal("hi", language="en"), None),
        ],
    )


class TestJson:
    def test_structure(self, result):
        document = json.loads(to_json(result))
        assert document["head"]["vars"] == ["x", "name", "age"]
        assert len(document["results"]["bindings"]) == 2

    def test_uri_term(self, result):
        binding = json.loads(to_json(result))["results"]["bindings"][0]
        assert binding["x"] == {"type": "uri", "value": "http://pg/v1"}

    def test_typed_literal(self, result):
        binding = json.loads(to_json(result))["results"]["bindings"][0]
        assert binding["age"] == {
            "type": "literal",
            "value": "23",
            "datatype": XSD.int.value,
        }

    def test_plain_literal_has_no_datatype(self, result):
        binding = json.loads(to_json(result))["results"]["bindings"][0]
        assert binding["name"] == {"type": "literal", "value": "Amy"}

    def test_language_literal(self, result):
        binding = json.loads(to_json(result))["results"]["bindings"][1]
        assert binding["name"]["xml:lang"] == "en"

    def test_bnode(self, result):
        binding = json.loads(to_json(result))["results"]["bindings"][1]
        assert binding["x"] == {"type": "bnode", "value": "b0"}

    def test_unbound_omitted(self, result):
        binding = json.loads(to_json(result))["results"]["bindings"][1]
        assert "age" not in binding

    def test_ask(self):
        assert json.loads(ask_to_json(True)) == {"head": {}, "boolean": True}
        assert json.loads(ask_to_json(False))["boolean"] is False

    def test_end_to_end(self, social_engine):
        result = social_engine.select(
            "SELECT ?n WHERE { ex:alice ex:name ?n }"
        )
        document = json.loads(to_json(result))
        assert document["results"]["bindings"][0]["n"]["value"] == "Alice"


class TestCsv:
    def test_header_and_rows(self, result):
        lines = to_csv(result).split("\r\n")
        assert lines[0] == "x,name,age"
        assert lines[1] == "http://pg/v1,Amy,23"

    def test_bnode_and_unbound(self, result):
        lines = to_csv(result).split("\r\n")
        assert lines[2] == "_:b0,hi,"

    def test_quoting(self):
        result = SelectResult(("v",), [(Literal('a,"b"'),)])
        lines = to_csv(result).split("\r\n")
        assert lines[1] == '"a,""b"""'
