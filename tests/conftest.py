"""Shared fixtures for the test suite."""

import pytest

from repro.rdf import IRI, Literal, Quad
from repro.store import SemanticNetwork
from repro.sparql import SparqlEngine

EX = "http://ex/"


def ex(name: str) -> IRI:
    return IRI(EX + name)


@pytest.fixture
def social_engine():
    """A small social-graph dataset in the default graph plus one named
    graph, shared by SPARQL evaluator tests.

    People: alice knows bob, carol; bob knows carol; carol knows alice
    (a triangle via 'knows').  Ages and names as literals.  One quad in
    named graph g1.
    """
    network = SemanticNetwork()
    network.create_model("social")
    quads = [
        Quad(ex("alice"), ex("knows"), ex("bob")),
        Quad(ex("alice"), ex("knows"), ex("carol")),
        Quad(ex("bob"), ex("knows"), ex("carol")),
        Quad(ex("carol"), ex("knows"), ex("alice")),
        Quad(ex("alice"), ex("name"), Literal("Alice")),
        Quad(ex("bob"), ex("name"), Literal("Bob")),
        Quad(ex("carol"), ex("name"), Literal("Carol")),
        Quad(ex("alice"), ex("age"), Literal.from_python(23)),
        Quad(ex("bob"), ex("age"), Literal.from_python(30)),
        Quad(ex("carol"), ex("age"), Literal.from_python(27)),
        Quad(ex("alice"), ex("likes"), ex("bob"), ex("g1")),
        Quad(ex("g1"), ex("since"), Literal.from_python(2007), ex("g1")),
    ]
    network.bulk_load("social", quads)
    return SparqlEngine(
        network, prefixes={"ex": EX}, default_model="social"
    )
