"""Unit tests for the SPARQL tokenizer."""

import pytest

from repro.sparql.errors import ParseError
from repro.sparql.tokens import tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)][:-1]  # drop EOF


class TestTokenizer:
    def test_keywords_case_insensitive(self):
        assert kinds("select WHERE Filter") == [
            ("KEYWORD", "SELECT"),
            ("KEYWORD", "WHERE"),
            ("KEYWORD", "FILTER"),
        ]

    def test_iriref(self):
        assert kinds("<http://x/a>") == [("IRIREF", "http://x/a")]

    def test_less_than_not_confused_with_iri(self):
        assert kinds("?x < 5")[1] == ("PUNCT", "<")

    def test_iri_followed_by_gt_elsewhere(self):
        tokens = kinds("FILTER(?x<5) <http://x/p>")
        assert ("PUNCT", "<") in tokens
        assert ("IRIREF", "http://x/p") in tokens

    def test_variables(self):
        assert kinds("?x $y") == [("VAR", "x"), ("VAR", "y")]

    def test_pname(self):
        assert kinds("rel:follows :bare key:") == [
            ("PNAME", "rel:follows"),
            ("PNAME", ":bare"),
            ("PNAME", "key:"),
        ]

    def test_pname_does_not_swallow_dot_terminator(self):
        assert kinds("rel:follows .") == [
            ("PNAME", "rel:follows"),
            ("PUNCT", "."),
        ]

    def test_string_literals(self):
        assert kinds("'abc' \"def\"") == [("STRING", "abc"), ("STRING", "def")]

    def test_string_escapes(self):
        assert kinds(r'"a\tb\"c"') == [("STRING", 'a\tb"c')]

    def test_long_string(self):
        assert kinds('"""line1\nline2"""') == [("STRING", "line1\nline2")]

    def test_language_tag(self):
        assert kinds('"train"@en-us') == [("STRING", "train"), ("LANGTAG", "en-us")]

    def test_typed_literal_tokens(self):
        assert kinds('"23"^^<http://www.w3.org/2001/XMLSchema#int>') == [
            ("STRING", "23"),
            ("PUNCT", "^^"),
            ("IRIREF", "http://www.w3.org/2001/XMLSchema#int"),
        ]

    def test_numbers(self):
        assert kinds("42 3.14 1e6") == [
            ("NUMBER", "42"),
            ("NUMBER", "3.14"),
            ("NUMBER", "1e6"),
        ]

    def test_number_then_dot_terminator(self):
        assert kinds("42 .") == [("NUMBER", "42"), ("PUNCT", ".")]

    def test_blank_node(self):
        assert kinds("_:b1") == [("BLANK", "b1")]

    def test_comments_stripped(self):
        assert kinds("?x # comment\n?y") == [("VAR", "x"), ("VAR", "y")]

    def test_multichar_punct(self):
        assert kinds("<= >= != && ||") == [
            ("PUNCT", "<="),
            ("PUNCT", ">="),
            ("PUNCT", "!="),
            ("PUNCT", "&&"),
            ("PUNCT", "||"),
        ]

    def test_path_punct(self):
        assert kinds("a/b:c|^d:e") == [
            ("KEYWORD", "A"),
            ("PUNCT", "/"),
            ("PNAME", "b:c"),
            ("PUNCT", "|"),
            ("PUNCT", "^"),
            ("PNAME", "d:e"),
        ]

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError):
            tokenize('"oops')

    def test_unknown_character_raises(self):
        with pytest.raises(ParseError):
            tokenize("\x00")

    def test_position_tracking(self):
        tokens = tokenize("?x\n  ?y")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 3

    def test_function_names_are_keywords(self):
        assert kinds("isLiteral COUNT") == [
            ("KEYWORD", "ISLITERAL"),
            ("KEYWORD", "COUNT"),
        ]
