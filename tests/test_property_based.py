"""Property-based tests (hypothesis) for the core invariants.

* PG -> RDF -> PG is the identity for every model (losslessness);
* Table 2's cardinality formulas hold on arbitrary graphs;
* RF / NG / SP answer edge-KV queries identically;
* index range scans equal naive filtering for arbitrary patterns;
* N-Quads serialization round-trips arbitrary quads;
* relation join/union algebra obeys its laws;
* observability never lies: per-operator rows matched <= rows scanned,
  and collecting metrics never changes query answers.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.core import (
    MODEL_NG,
    MODEL_RF,
    MODEL_SP,
    PropertyGraphRdfStore,
    measure_property_graph,
    measure_rdf,
    predict_rdf,
    transformer_for,
)
from repro.core.roundtrip import rdf_to_property_graph
from repro.propertygraph import PropertyGraph
from repro.rdf import (
    IRI,
    BlankNode,
    Literal,
    Quad,
    XSD,
    parse_nquads_document,
    serialize_nquads,
)
from repro.sparql.relation import Relation, join, union
from repro.store import SemanticIndex

MODELS = [MODEL_RF, MODEL_NG, MODEL_SP]

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

_KEYS = st.sampled_from(["name", "age", "hasTag", "refs", "weight"])
_LABELS = st.sampled_from(["follows", "knows", "likes"])
_SCALARS = st.one_of(
    st.text(alphabet=string.ascii_letters + "# @", min_size=0, max_size=8),
    st.integers(min_value=-10**6, max_value=10**6),
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)


@st.composite
def property_graphs(draw):
    """Small random property graphs with multi-valued KVs."""
    graph = PropertyGraph("random")
    vertex_count = draw(st.integers(min_value=1, max_value=8))
    for vertex_id in range(1, vertex_count + 1):
        vertex = graph.add_vertex(vertex_id)
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            vertex.add_property(draw(_KEYS), draw(_SCALARS))
    edge_count = draw(st.integers(min_value=0, max_value=12))
    seen = set()
    for _ in range(edge_count):
        source = draw(st.integers(min_value=1, max_value=vertex_count))
        target = draw(st.integers(min_value=1, max_value=vertex_count))
        label = draw(_LABELS)
        # No duplicate (source, label, target) parallel edges: NG keeps
        # one quad per edge while SP/RF's explicit -s-p-o triples have
        # RDF set semantics, so duplicates make topology-only bag
        # queries diverge across models (see EXPERIMENTS.md).
        if (source, label, target) in seen:
            continue
        seen.add((source, label, target))
        edge = graph.add_edge(source, label, target)
        for _ in range(draw(st.integers(min_value=0, max_value=2))):
            edge.add_property(draw(_KEYS), draw(_SCALARS))
    return graph


def _graph_signature(graph: PropertyGraph):
    """Canonical comparable form of a property graph."""
    vertices = {
        v.id: sorted((k, type(x).__name__, repr(x)) for k, x in v.kv_pairs())
        for v in graph.vertices()
    }
    edges = {
        e.id: (
            e.source,
            e.label,
            e.target,
            sorted((k, type(x).__name__, repr(x)) for k, x in e.kv_pairs()),
        )
        for e in graph.edges()
    }
    return vertices, edges


class TestRoundTripProperties:
    @settings(max_examples=60, deadline=None)
    @given(graph=property_graphs(), model=st.sampled_from(MODELS))
    def test_transform_is_lossless(self, graph, model):
        quads = list(transformer_for(model).transform(graph))
        rebuilt = rdf_to_property_graph(quads, model)
        assert _graph_signature(rebuilt) == _graph_signature(graph)

    @settings(max_examples=30, deadline=None)
    @given(graph=property_graphs(), model=st.sampled_from(MODELS))
    def test_transform_deterministic(self, graph, model):
        first = set(transformer_for(model).transform(graph))
        second = set(transformer_for(model).transform(graph))
        assert first == second


class TestCardinalityProperties:
    @settings(max_examples=40, deadline=None)
    @given(graph=property_graphs(), model=st.sampled_from(MODELS))
    def test_table2_formulas(self, graph, model):
        # The closed forms assume no isolated vertices (they add an
        # rdf:type triple): skip those by connecting them.
        if graph.isolated_vertices():
            for vertex_id in graph.isolated_vertices():
                graph.vertex(vertex_id).set_property("name", "x")
        predicted = predict_rdf(measure_property_graph(graph), model)
        measured = measure_rdf(list(transformer_for(model).transform(graph)))
        assert measured.total_quads == predicted.total_quads
        assert measured.named_graphs == predicted.named_graphs
        assert measured.object_property_quads == predicted.object_property_quads
        assert measured.data_property_quads == predicted.data_property_quads


class TestCrossModelQueryProperties:
    @settings(max_examples=20, deadline=None)
    @given(graph=property_graphs())
    def test_edge_kv_query_equivalence(self, graph):
        """Q2 (all follows edges + KVs) agrees across all three models."""
        answers = set()
        for model in MODELS:
            store = PropertyGraphRdfStore(model=model)
            store.load(graph)
            result = store.select(store.queries.q2_edges_with_kvs("follows"))
            rows = tuple(sorted(
                tuple(term.n3() if term else None for term in row)
                for row in result.rows
            ))
            answers.add(rows)
        assert len(answers) == 1

    @settings(max_examples=20, deadline=None)
    @given(graph=property_graphs())
    def test_triangle_count_equivalence(self, graph):
        counts = set()
        for model in MODELS:
            store = PropertyGraphRdfStore(model=model)
            store.load(graph)
            counts.add(
                store.select(store.queries.eq12()).scalar().to_python()
            )
        assert len(counts) == 1


_QUAD_IDS = st.tuples(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=3),
)


class TestIndexProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        quads=st.lists(_QUAD_IDS, max_size=40),
        spec=st.sampled_from(["PCSG", "PSCG", "GSPC", "SPCG", "SCPG", "PC"]),
        pattern=st.tuples(
            st.one_of(st.none(), st.integers(min_value=1, max_value=6)),
            st.one_of(st.none(), st.integers(min_value=1, max_value=4)),
            st.one_of(st.none(), st.integers(min_value=1, max_value=6)),
            st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
        ),
    )
    def test_range_scan_equals_naive_filter(self, quads, spec, pattern):
        unique = sorted(set(quads))
        index = SemanticIndex(spec)
        index.bulk_build(unique)
        expected = [
            quad
            for quad in unique
            if all(p is None or quad[i] == p for i, p in enumerate(pattern))
        ]
        assert sorted(index.range_scan(pattern)) == expected

    @settings(max_examples=40, deadline=None)
    @given(quads=st.lists(_QUAD_IDS, max_size=30), extra=_QUAD_IDS)
    def test_insert_equals_rebuild(self, quads, extra):
        unique = sorted(set(quads))
        incremental = SemanticIndex("PCSG")
        incremental.bulk_build(unique)
        if extra not in unique:
            incremental.insert(extra)
        rebuilt = SemanticIndex("PCSG")
        rebuilt.bulk_build(sorted(set(unique + [extra])))
        full = (None, None, None, None)
        assert list(incremental.range_scan(full)) == list(rebuilt.range_scan(full))


_TERMS = st.one_of(
    st.integers(min_value=1, max_value=99).map(lambda i: IRI(f"http://x/{i}")),
    st.text(alphabet=string.printable, max_size=6).map(Literal),
    st.integers(min_value=-99, max_value=99).map(Literal.from_python),
    st.sampled_from(["a", "b1"]).map(BlankNode),
)
_GRAPH_TERMS = st.one_of(
    st.none(),
    st.integers(min_value=1, max_value=9).map(lambda i: IRI(f"http://g/{i}")),
)
_QUADS = st.builds(
    Quad,
    subject=st.integers(min_value=1, max_value=99).map(
        lambda i: IRI(f"http://s/{i}")
    ),
    predicate=st.integers(min_value=1, max_value=9).map(
        lambda i: IRI(f"http://p/{i}")
    ),
    object=_TERMS,
    graph=_GRAPH_TERMS,
)


class TestNquadsProperties:
    @settings(max_examples=100, deadline=None)
    @given(quads=st.lists(_QUADS, max_size=15))
    def test_serialize_parse_roundtrip(self, quads):
        assert parse_nquads_document(serialize_nquads(quads)) == quads


_ROWS = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(min_value=1, max_value=5)),
        st.one_of(st.none(), st.integers(min_value=1, max_value=5)),
    ),
    max_size=8,
)


class TestRelationAlgebraProperties:
    @settings(max_examples=60, deadline=None)
    @given(left_rows=_ROWS, right_rows=_ROWS)
    def test_join_commutative_on_cardinality(self, left_rows, right_rows):
        left = Relation(("a", "b"), left_rows)
        right = Relation(("b", "c"), right_rows)
        forward = join(left, right)
        backward = join(right, left)
        assert forward.cardinality == backward.cardinality

    @settings(max_examples=60, deadline=None)
    @given(rows=_ROWS)
    def test_join_with_unit_is_identity(self, rows):
        relation = Relation(("a", "b"), rows)
        joined = join(Relation.unit(), relation)
        assert sorted(joined.rows, key=repr) == sorted(relation.rows, key=repr)

    @settings(max_examples=60, deadline=None)
    @given(left_rows=_ROWS, right_rows=_ROWS)
    def test_union_cardinality_adds(self, left_rows, right_rows):
        left = Relation(("a", "b"), left_rows)
        right = Relation(("a", "b"), right_rows)
        assert union([left, right]).cardinality == (
            left.cardinality + right.cardinality
        )

    @settings(max_examples=60, deadline=None)
    @given(rows=_ROWS)
    def test_compact_preserves_cardinality(self, rows):
        relation = Relation(("a", "b"), rows)
        assert relation.compact().cardinality == relation.cardinality

    @settings(max_examples=60, deadline=None)
    @given(rows=_ROWS)
    def test_distinct_bounded_by_compact(self, rows):
        relation = Relation(("a", "b"), rows)
        assert len(relation.distinct()) == len(relation.compact())


# ----------------------------------------------------------------------
# Observability invariants
# ----------------------------------------------------------------------

_OBS_QUERIES = [
    # Tag lookup + one hop (index probes).
    "SELECT ?n ?nf WHERE { ?n k:hasTag ?t . ?nf r:follows ?n }",
    # Filter over a scanned column (push-down eligible).
    'SELECT ?n WHERE { ?n k:hasTag ?t FILTER (?t != "never") }',
    # Two-hop traversal with a repeated variable.
    "SELECT ?a ?c WHERE { ?a r:follows ?b . ?b r:follows ?c }",
    # Property path (frontier walk).
    "SELECT ?a ?c WHERE { ?a r:follows+ ?c }",
]


class TestObservabilityProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        graph=property_graphs(),
        model=st.sampled_from(MODELS),
        query=st.sampled_from(_OBS_QUERIES),
    )
    def test_rows_matched_bounded_by_rows_scanned(self, graph, model, query):
        """No operator reports more pattern matches than entries examined."""
        store = PropertyGraphRdfStore(model=model)
        store.load(graph)
        analysis = store.explain(query, analyze=True)
        for step in analysis.steps:
            assert step.rows_matched <= step.rows_scanned
        counters = analysis.stats.counters
        assert counters.get("index.rows_matched", 0) <= counters.get(
            "index.rows_scanned", 0
        )

    @settings(max_examples=15, deadline=None)
    @given(
        graph=property_graphs(),
        model=st.sampled_from(MODELS),
        query=st.sampled_from(_OBS_QUERIES),
    )
    def test_metrics_do_not_change_results(self, graph, model, query):
        """Identical answers with instrumentation off, with the global
        registry on, and under a per-query collector."""
        from repro.obs import metrics

        store = PropertyGraphRdfStore(model=model)
        store.load(graph)

        def rows():
            result = store.select(query)
            return sorted(
                tuple(term.n3() if term else None for term in row)
                for row in result.rows
            )

        plain = rows()
        with metrics.enabled(fresh=True):
            with_registry = rows()
        store.engine.collect_stats = True
        try:
            with_collector = rows()
        finally:
            store.engine.collect_stats = False
        assert plain == with_registry == with_collector
