"""Unit tests for the relational property graph form (Figure 3)."""

import pytest

from repro.propertygraph import (
    EdgeRow,
    ObjKVRow,
    PropertyGraph,
    PropertyGraphError,
    RelationalPropertyGraph,
    from_relational,
    to_relational,
)
from repro.propertygraph.relational import render_tables


@pytest.fixture
def figure1():
    graph = PropertyGraph("figure1")
    graph.add_vertex(1, {"name": "Amy", "age": 23})
    graph.add_vertex(2, {"name": "Mira", "age": 22})
    graph.add_edge(1, "follows", 2, {"since": 2007}, edge_id=3)
    graph.add_edge(1, "knows", 2, {"firstMetAt": "MIT"}, edge_id=4)
    return graph


class TestToRelational:
    def test_edges_table(self, figure1):
        relational = to_relational(figure1)
        assert EdgeRow(1, 3, "follows", 2) in relational.edges
        assert EdgeRow(1, 4, "knows", 2) in relational.edges

    def test_objkvs_table_types(self, figure1):
        relational = to_relational(figure1)
        rows = {(r.obj_id, r.key, r.is_edge): (r.type, r.value)
                for r in relational.obj_kvs}
        assert rows[(1, "name", False)] == ("VARCHAR", "Amy")
        assert rows[(1, "age", False)] == ("NUMBER", "23")
        assert rows[(3, "since", True)] == ("NUMBER", "2007")
        assert rows[(4, "firstMetAt", True)] == ("VARCHAR", "MIT")

    def test_float_and_boolean_types(self):
        graph = PropertyGraph()
        graph.add_vertex(1, {"score": 2.5, "active": True})
        relational = to_relational(graph)
        types = {r.key: (r.type, r.value) for r in relational.obj_kvs}
        assert types["score"] == ("FLOAT", "2.5")
        assert types["active"] == ("BOOLEAN", "true")

    def test_vertex_list_includes_isolated(self, figure1):
        figure1.add_vertex(10)
        relational = to_relational(figure1)
        assert 10 in relational.vertices


class TestFromRelational:
    def test_roundtrip(self, figure1):
        rebuilt = from_relational(to_relational(figure1))
        assert rebuilt.vertex_count == figure1.vertex_count
        assert rebuilt.edge_count == figure1.edge_count
        assert rebuilt.vertex(1).properties == figure1.vertex(1).properties
        assert rebuilt.edge(3).properties == figure1.edge(3).properties
        assert rebuilt.edge(4).label == "knows"

    def test_roundtrip_preserves_value_types(self):
        graph = PropertyGraph()
        graph.add_vertex(1, {"i": 5, "f": 1.5, "b": False, "s": "x"})
        rebuilt = from_relational(to_relational(graph))
        properties = rebuilt.vertex(1).properties
        assert properties == {"i": 5, "f": 1.5, "b": False, "s": "x"}
        assert isinstance(properties["i"], int)
        assert isinstance(properties["f"], float)
        assert isinstance(properties["b"], bool)

    def test_vertices_inferred_from_edges(self):
        relational = RelationalPropertyGraph(
            edges=[EdgeRow(1, 10, "p", 2)], obj_kvs=[], vertices=[]
        )
        graph = from_relational(relational)
        assert graph.has_vertex(1) and graph.has_vertex(2)

    def test_unknown_edge_kv_rejected(self):
        relational = RelationalPropertyGraph(
            edges=[],
            obj_kvs=[ObjKVRow(9, "k", "VARCHAR", "v", is_edge=True)],
            vertices=[1],
        )
        with pytest.raises(PropertyGraphError):
            from_relational(relational)

    def test_unknown_vertex_kv_rejected(self):
        relational = RelationalPropertyGraph(
            edges=[],
            obj_kvs=[ObjKVRow(9, "k", "VARCHAR", "v", is_edge=False)],
            vertices=[1],
        )
        with pytest.raises(PropertyGraphError):
            from_relational(relational)


class TestRendering:
    def test_render_tables(self, figure1):
        text = render_tables(to_relational(figure1))
        assert "Edges" in text and "ObjKVs" in text
        assert "follows" in text and "since" in text
