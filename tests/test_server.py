"""Tests for the SPARQL Protocol HTTP endpoint."""

import json
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.server import SparqlServer


@pytest.fixture
def server(social_engine):
    with SparqlServer(social_engine, allow_updates=True) as running:
        yield running


def get(server, path, accept=None):
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        headers={"Accept": accept} if accept else {},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, response.headers.get_content_type(), (
            response.read().decode("utf-8")
        )


def post(server, path, body, content_type):
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        data=body.encode("utf-8"),
        headers={"Content-Type": content_type},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


QUERY = "SELECT ?n WHERE { ?x <http://ex/name> ?n } ORDER BY ?n"


class TestQueryEndpoint:
    def test_get_json(self, server):
        encoded = urllib.parse.quote(QUERY)
        status, content_type, body = get(server, f"/sparql?query={encoded}")
        assert status == 200
        assert content_type == "application/sparql-results+json"
        document = json.loads(body)
        names = [b["n"]["value"] for b in document["results"]["bindings"]]
        assert names == ["Alice", "Bob", "Carol"]

    def test_get_csv_by_accept(self, server):
        encoded = urllib.parse.quote(QUERY)
        status, content_type, body = get(
            server, f"/sparql?query={encoded}", accept="text/csv"
        )
        assert content_type == "text/csv"
        assert "Alice" in body

    def test_post_form_encoded(self, server):
        body = urllib.parse.urlencode({"query": QUERY})
        status, text = post(
            server, "/sparql", body, "application/x-www-form-urlencoded"
        )
        assert status == 200 and "Alice" in text

    def test_post_raw_query(self, server):
        status, text = post(
            server, "/sparql", QUERY, "application/sparql-query"
        )
        assert status == 200 and "Carol" in text

    def test_ask(self, server):
        encoded = urllib.parse.quote(
            "ASK { <http://ex/alice> <http://ex/knows> <http://ex/bob> }"
        )
        _, _, body = get(server, f"/sparql?query={encoded}")
        assert json.loads(body)["boolean"] is True

    def test_construct_returns_ntriples(self, server):
        encoded = urllib.parse.quote(
            "CONSTRUCT { ?x <http://ex/q> ?y } "
            "WHERE { ?x <http://ex/knows> ?y }"
        )
        status, content_type, body = get(server, f"/sparql?query={encoded}")
        assert content_type == "application/n-triples"
        assert body.count("<http://ex/q>") == 4

    def test_missing_query_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server, "/sparql")
        assert err.value.code == 400

    def test_bad_query_is_400(self, server):
        encoded = urllib.parse.quote("SELECT WHERE {")
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server, f"/sparql?query={encoded}")
        assert err.value.code == 400

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server, "/nope")
        assert err.value.code == 404


class TestUpdateEndpoint:
    def test_update_applies(self, server, social_engine):
        body = urllib.parse.urlencode({
            "update": 'INSERT DATA { <http://ex/dan> <http://ex/name> "Dan" }'
        })
        status, text = post(
            server, "/update", body, "application/x-www-form-urlencoded"
        )
        assert status == 200
        assert json.loads(text)["inserted"] == 1
        assert social_engine.ask(
            'ASK { <http://ex/dan> <http://ex/name> "Dan" }'
        )

    def test_update_disabled_by_default(self, social_engine):
        with SparqlServer(social_engine) as readonly:
            body = urllib.parse.urlencode({
                "update": "INSERT DATA { <http://x/a> <http://x/b> <http://x/c> }"
            })
            with pytest.raises(urllib.error.HTTPError) as err:
                post(readonly, "/update", body,
                     "application/x-www-form-urlencoded")
            assert err.value.code == 403
