"""Tests for the SPARQL Protocol HTTP endpoint."""

import json
import time
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.server import SparqlServer


@pytest.fixture
def server(social_engine):
    with SparqlServer(social_engine, allow_updates=True) as running:
        yield running


def get(server, path, accept=None):
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        headers={"Accept": accept} if accept else {},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, response.headers.get_content_type(), (
            response.read().decode("utf-8")
        )


def post(server, path, body, content_type):
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        data=body.encode("utf-8"),
        headers={"Content-Type": content_type},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


QUERY = "SELECT ?n WHERE { ?x <http://ex/name> ?n } ORDER BY ?n"


class TestQueryEndpoint:
    def test_get_json(self, server):
        encoded = urllib.parse.quote(QUERY)
        status, content_type, body = get(server, f"/sparql?query={encoded}")
        assert status == 200
        assert content_type == "application/sparql-results+json"
        document = json.loads(body)
        names = [b["n"]["value"] for b in document["results"]["bindings"]]
        assert names == ["Alice", "Bob", "Carol"]

    def test_get_csv_by_accept(self, server):
        encoded = urllib.parse.quote(QUERY)
        status, content_type, body = get(
            server, f"/sparql?query={encoded}", accept="text/csv"
        )
        assert content_type == "text/csv"
        assert "Alice" in body

    def test_post_form_encoded(self, server):
        body = urllib.parse.urlencode({"query": QUERY})
        status, text = post(
            server, "/sparql", body, "application/x-www-form-urlencoded"
        )
        assert status == 200 and "Alice" in text

    def test_post_raw_query(self, server):
        status, text = post(
            server, "/sparql", QUERY, "application/sparql-query"
        )
        assert status == 200 and "Carol" in text

    def test_ask(self, server):
        encoded = urllib.parse.quote(
            "ASK { <http://ex/alice> <http://ex/knows> <http://ex/bob> }"
        )
        _, _, body = get(server, f"/sparql?query={encoded}")
        assert json.loads(body)["boolean"] is True

    def test_construct_returns_ntriples(self, server):
        encoded = urllib.parse.quote(
            "CONSTRUCT { ?x <http://ex/q> ?y } "
            "WHERE { ?x <http://ex/knows> ?y }"
        )
        status, content_type, body = get(server, f"/sparql?query={encoded}")
        assert content_type == "application/n-triples"
        assert body.count("<http://ex/q>") == 4

    def test_missing_query_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server, "/sparql")
        assert err.value.code == 400

    def test_bad_query_is_400(self, server):
        encoded = urllib.parse.quote("SELECT WHERE {")
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server, f"/sparql?query={encoded}")
        assert err.value.code == 400

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server, "/nope")
        assert err.value.code == 404


class TestUpdateEndpoint:
    def test_update_applies(self, server, social_engine):
        body = urllib.parse.urlencode({
            "update": 'INSERT DATA { <http://ex/dan> <http://ex/name> "Dan" }'
        })
        status, text = post(
            server, "/update", body, "application/x-www-form-urlencoded"
        )
        assert status == 200
        assert json.loads(text)["inserted"] == 1
        assert social_engine.ask(
            'ASK { <http://ex/dan> <http://ex/name> "Dan" }'
        )

    def test_update_disabled_by_default(self, social_engine):
        with SparqlServer(social_engine) as readonly:
            body = urllib.parse.urlencode({
                "update": "INSERT DATA { <http://x/a> <http://x/b> <http://x/c> }"
            })
            with pytest.raises(urllib.error.HTTPError) as err:
                post(readonly, "/update", body,
                     "application/x-www-form-urlencoded")
            assert err.value.code == 403


def post_raw_content_length(port, path, content_length):
    """POST with a hand-set Content-Length header (urllib would fix it)."""
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.putrequest("POST", path)
        conn.putheader("Content-Type", "application/sparql-query")
        conn.putheader("Content-Length", content_length)
        conn.endheaders()
        response = conn.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        conn.close()


class TestHardening:
    def test_non_integer_content_length_is_400(self, server):
        status, body = post_raw_content_length(server.port, "/sparql", "abc")
        assert status == 400
        assert "Content-Length" in json.loads(body)["error"]

    def test_oversized_body_is_413(self, social_engine):
        with SparqlServer(
            social_engine, allow_updates=True, max_body_bytes=64
        ) as small:
            with pytest.raises(urllib.error.HTTPError) as err:
                post(small, "/sparql", "SELECT * WHERE { ?s ?p ?o }" + " " * 100,
                     "application/sparql-query")
            assert err.value.code == 413

    def test_unsupported_methods_are_405(self, server):
        for method in ("PUT", "DELETE", "PATCH"):
            request = urllib.request.Request(
                f"http://127.0.0.1:{server.port}/sparql",
                data=b"x",
                method=method,
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=10)
            assert err.value.code == 405
            assert err.value.headers.get("Allow") == "GET, POST"

    def test_error_bodies_are_json(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server, "/sparql")
        assert json.loads(err.value.read().decode("utf-8"))["error"]


class TestTimeouts:
    @pytest.fixture
    def slow_engine(self):
        from repro.rdf import IRI, Quad
        from repro.sparql import SparqlEngine
        from repro.store import SemanticNetwork

        network = SemanticNetwork()
        network.create_model("m")
        network.bulk_load("m", [
            Quad(IRI(f"http://ex/s{i}"), IRI("http://ex/p"),
                 IRI(f"http://ex/o{i % 50}"))
            for i in range(2000)
        ])
        return SparqlEngine(network, default_model="m")

    CARTESIAN = (
        "SELECT (COUNT(*) AS ?c) WHERE { "
        "?a <http://ex/p> ?b . ?c <http://ex/p> ?d . ?e <http://ex/p> ?f }"
    )

    def test_slow_query_gets_503_with_payload(self, slow_engine):
        with SparqlServer(slow_engine, timeout=0.3) as running:
            encoded = urllib.parse.quote(self.CARTESIAN)
            with pytest.raises(urllib.error.HTTPError) as err:
                get(running, f"/sparql?query={encoded}")
            assert err.value.code == 503
            payload = json.loads(err.value.read().decode("utf-8"))
            assert payload["error"] == "QueryTimeout"
            assert payload["timeout"] == 0.3
            assert payload["elapsed"] >= 0.3
            # The endpoint stays usable after a timeout.
            encoded = urllib.parse.quote(
                "SELECT (COUNT(*) AS ?c) WHERE { ?a <http://ex/p> ?b }"
            )
            status, _, body = get(running, f"/sparql?query={encoded}")
            assert status == 200

    CARTESIAN_UPDATE = (
        "INSERT { ?a <http://ex/r> ?f } WHERE { "
        "?a <http://ex/p> ?b . ?c <http://ex/p> ?d . ?e <http://ex/p> ?f }"
    )

    def test_slow_update_gets_503_with_payload(self, slow_engine):
        with SparqlServer(
            slow_engine, allow_updates=True, timeout=0.3
        ) as running:
            with pytest.raises(urllib.error.HTTPError) as err:
                post(running, "/update", self.CARTESIAN_UPDATE,
                     "application/sparql-update")
            assert err.value.code == 503
            payload = json.loads(err.value.read().decode("utf-8"))
            assert payload["error"] == "QueryTimeout"
            # The aborted update applied nothing and the endpoint
            # stays usable.
            status, body = post(
                running, "/update",
                "INSERT DATA { <http://ex/n> <http://ex/p> <http://ex/o> }",
                "application/sparql-update",
            )
            assert status == 200
            assert json.loads(body)["inserted"] == 1


class TestInflightGate:
    def test_excess_requests_get_429(self, social_engine):
        import threading

        with SparqlServer(
            social_engine, max_inflight=1, allow_updates=True
        ) as running:
            encoded = urllib.parse.quote(QUERY)
            # Deterministically occupy the single slot: hold the store's
            # write lock so an *update* request blocks inside the gate.
            # (Queries can no longer be parked this way — MVCC reads
            # never take the lock.)
            social_engine.network.lock.acquire_write()
            first_result = {}

            def first():
                try:
                    first_result["status"] = post(
                        running, "/update",
                        "INSERT DATA { <http://ex/gate> <http://ex/p> "
                        "<http://ex/o> }",
                        "application/sparql-update",
                    )[0]
                except Exception as exc:  # noqa: BLE001
                    first_result["error"] = exc

            gate = running._server.RequestHandlerClass.gate
            thread = threading.Thread(target=first)
            thread.start()
            try:
                # Wait until the first request actually occupies the slot
                # (probing earlier would race it into the gate ourselves).
                deadline = time.monotonic() + 5
                while gate.in_use == 0 and time.monotonic() < deadline:
                    time.sleep(0.005)
                assert gate.in_use == 1, "first request never reached the gate"
                with pytest.raises(urllib.error.HTTPError) as err:
                    get(running, f"/sparql?query={encoded}")
                assert err.value.code == 429
                rejected = json.loads(err.value.read().decode("utf-8"))
                assert "capacity" in rejected["error"]
            finally:
                social_engine.network.lock.release_write()
                thread.join(timeout=10)
            assert first_result.get("status") == 200
            # Slot released: requests succeed again.
            status, _, _ = get(running, f"/sparql?query={encoded}")
            assert status == 200

    def test_zero_inflight_rejected_not_unlimited(self, social_engine):
        # max_inflight=0 must be a loud error, not silently "no gate".
        from repro.server import make_server

        with pytest.raises(ValueError, match="max_inflight"):
            make_server(social_engine, max_inflight=0)


class TestWorkerPool:
    def test_pool_executes_and_returns(self):
        from repro.server import WorkerPool

        pool = WorkerPool(workers=2)
        try:
            jobs = [pool.submit(lambda x: x * x, i) for i in range(4)]
            assert [job.wait() for job in jobs] == [0, 1, 4, 9]
        finally:
            pool.close()

    def test_pool_propagates_exceptions(self):
        from repro.server import WorkerPool

        def boom():
            raise ValueError("exploded in worker")

        pool = WorkerPool(workers=1)
        try:
            with pytest.raises(ValueError, match="exploded in worker"):
                pool.submit(boom).wait()
        finally:
            pool.close()

    def test_pool_saturation_raises(self):
        import threading

        from repro.server import PoolSaturated, WorkerPool

        release = threading.Event()
        started = threading.Event()

        def block():
            started.set()
            assert release.wait(10)

        pool = WorkerPool(workers=1, max_queue=1)
        try:
            first = pool.submit(block)
            assert started.wait(5)  # worker busy, queue empty
            second = pool.submit(lambda: "queued")  # fills the queue
            with pytest.raises(PoolSaturated):
                pool.submit(lambda: "rejected")
        finally:
            release.set()
        first.wait()
        assert second.wait() == "queued"
        pool.close()

    def test_invalid_sizes_rejected(self):
        from repro.server import WorkerPool

        with pytest.raises(ValueError, match="workers"):
            WorkerPool(workers=0)
        with pytest.raises(ValueError, match="max_queue"):
            WorkerPool(workers=1, max_queue=0)

    def test_pool_close_is_idempotent(self):
        from repro.server import WorkerPool

        pool = WorkerPool(workers=2)
        pool.close()
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(lambda: 1)


class _GateEngine:
    """Engine stub whose query blocks until released — makes worker
    occupancy deterministic for the saturation tests."""

    def __init__(self):
        import threading

        self.started = threading.Event()
        self.release = threading.Event()

    def query(self, text, timeout=None):
        self.started.set()
        assert self.release.wait(10)
        return True  # an ASK-shaped result


class TestServerWorkerPool:
    def test_queries_answered_through_pool(self, social_engine):
        with SparqlServer(social_engine, workers=2) as running:
            encoded = urllib.parse.quote(QUERY)
            status, _, body = get(running, f"/sparql?query={encoded}")
            assert status == 200
            names = [
                b["n"]["value"]
                for b in json.loads(body)["results"]["bindings"]
            ]
            assert names == ["Alice", "Bob", "Carol"]

    def test_full_queue_answers_429(self):
        import threading

        stub = _GateEngine()
        with SparqlServer(stub, workers=1, max_queue=1) as running:
            results = {}

            def request(key):
                try:
                    results[key] = get(running, "/sparql?query=x")[0]
                except urllib.error.HTTPError as err:
                    results[key] = err.code

            first = threading.Thread(target=request, args=("first",))
            first.start()
            assert stub.started.wait(5), "first request never reached a worker"
            second = threading.Thread(target=request, args=("second",))
            second.start()
            pool = running._server.worker_pool
            deadline = time.monotonic() + 5
            while pool.queue_depth == 0 and time.monotonic() < deadline:
                time.sleep(0.005)
            assert pool.queue_depth == 1, "second request never queued"
            # Worker busy + queue full: immediate backpressure.
            with pytest.raises(urllib.error.HTTPError) as err:
                get(running, "/sparql?query=x")
            assert err.value.code == 429
            assert "capacity" in json.loads(
                err.value.read().decode("utf-8")
            )["error"]
            stub.release.set()
            first.join(timeout=10)
            second.join(timeout=10)
            assert results == {"first": 200, "second": 200}

    def test_metrics_expose_queue_depth_and_snapshot_gauges(
        self, social_engine
    ):
        from repro.obs import metrics as obs_metrics

        obs_metrics.enable()
        try:
            with SparqlServer(social_engine, workers=1) as running:
                encoded = urllib.parse.quote(QUERY)
                status, _, _ = get(running, f"/sparql?query={encoded}")
                assert status == 200
                _, _, body = get(running, "/metrics")
                gauges = json.loads(body)["gauges"]
                assert "server.queue_depth" in gauges
                assert "snapshot.age" in gauges
                assert gauges["snapshot.versions_live"] >= 1
                _, _, prom = get(running, "/metrics", accept="text/plain")
                assert "repro_server_queue_depth" in prom
                assert "repro_snapshot_age" in prom
                assert "repro_snapshot_versions_live" in prom
        finally:
            obs_metrics.disable()

    def test_trace_spans_cross_the_pool(self, social_engine):
        # The request trace opens on the connection thread; the query
        # runs on a worker.  Its spans must land in the same tree.
        with SparqlServer(social_engine, workers=1, trace=True) as running:
            encoded = urllib.parse.quote(QUERY)
            request = urllib.request.Request(
                f"http://127.0.0.1:{running.port}/sparql?query={encoded}"
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                trace_id = response.headers.get("X-Trace-Id")
                response.read()
            assert trace_id
            _, _, body = get(running, f"/trace/{trace_id}")
            names = [s["name"] for s in json.loads(body)["spans"]]
            assert "request" in names
            assert "snapshot.pin" in names
            assert "op.IndexScan" in names


class TestServerLifecycle:
    def test_stop_joins_thread(self, social_engine):
        running = SparqlServer(social_engine).start()
        running.stop()
        assert running._thread is None

    def test_start_twice_raises(self, social_engine):
        running = SparqlServer(social_engine).start()
        try:
            with pytest.raises(RuntimeError):
                running.start()
        finally:
            running.stop()

    def test_stop_raises_when_thread_hangs(self, social_engine):
        import threading

        running = SparqlServer(social_engine).start()
        real_thread = running._thread
        hung = threading.Thread(target=time.sleep, args=(30,), daemon=True)
        hung.start()
        running._thread = hung
        with pytest.raises(RuntimeError, match="failed to stop"):
            running.stop(join_timeout=0.1)
        real_thread.join(timeout=5)


class _StubReplication:
    """A minimal stand-in for a ReplicationFollower in healthz tests."""

    def status(self):
        return {
            "role": "follower",
            "epoch": 2,
            "connected": True,
            "lag_frames": 0,
            "lag_seconds": 0.0,
            "applied_seq": 41,
            "leader_seq": 41,
        }


class TestStalenessHeaders:
    def test_every_response_carries_data_version(self, server, social_engine):
        encoded = urllib.parse.quote(QUERY)
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/sparql?query={encoded}"
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            version = response.headers.get("X-Data-Version")
            response.read()
        assert version is not None
        assert int(version) == social_engine.network.data_version

    def test_satisfied_min_version_answers_immediately(self, server,
                                                       social_engine):
        token = social_engine.network.data_version
        encoded = urllib.parse.quote(QUERY)
        status, _, body = get(
            server, f"/sparql?query={encoded}&min-version={token}"
        )
        assert status == 200 and "Alice" in body

    def test_min_version_header_equivalent_to_param(self, server,
                                                    social_engine):
        token = social_engine.network.data_version
        encoded = urllib.parse.quote(QUERY)
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/sparql?query={encoded}",
            headers={"X-Min-Version": str(token)},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.status == 200

    def test_unreachable_min_version_is_503(self, social_engine):
        with SparqlServer(social_engine, staleness_wait=0.05) as running:
            wanted = social_engine.network.data_version + 10
            encoded = urllib.parse.quote(QUERY)
            with pytest.raises(urllib.error.HTTPError) as err:
                get(running, f"/sparql?query={encoded}&min-version={wanted}")
            assert err.value.code == 503
            payload = json.loads(err.value.read().decode("utf-8"))
            assert payload["error"] == "StaleRead"
            assert payload["min_version"] == wanted

    def test_malformed_min_version_is_400(self, server):
        encoded = urllib.parse.quote(QUERY)
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server, f"/sparql?query={encoded}&min-version=soon")
        assert err.value.code == 400

    def test_update_response_reports_data_version(self, server,
                                                  social_engine):
        body = urllib.parse.urlencode({
            "update": 'INSERT DATA { <http://ex/eve> <http://ex/name> "Eve" }'
        })
        _, text = post(
            server, "/update", body, "application/x-www-form-urlencoded"
        )
        document = json.loads(text)
        assert document["data_version"] == (
            social_engine.network.data_version
        )

    def test_healthz_reports_replication_status(self, social_engine):
        with SparqlServer(
            social_engine, replication=_StubReplication()
        ) as running:
            _, _, body = get(running, "/healthz")
            document = json.loads(body)
            assert document["role"] == "follower"
            assert document["applied_data_version"] == (
                social_engine.network.data_version
            )
            replication = document["replication"]
            assert replication["epoch"] == 2
            assert replication["lag_frames"] == 0
            assert replication["connected"] is True

    def test_healthz_without_replication_has_no_role(self, server):
        _, _, body = get(server, "/healthz")
        document = json.loads(body)
        assert "role" not in document
        assert "applied_data_version" in document
