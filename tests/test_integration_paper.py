"""Integration tests: the paper's claims validated end to end.

These mirror the benchmark suite's shape assertions so that
``pytest tests/`` alone certifies the reproduction, at a small scale
(6 ego networks) for speed.
"""

import time

import pytest

from repro.bench.report import render_series, render_table
from repro.core import (
    MODEL_NG,
    MODEL_SP,
    PropertyGraphRdfStore,
    measure_property_graph,
    measure_rdf,
    predict_rdf,
)
from repro.datasets.twitter import (
    TwitterConfig,
    connected_tag,
    generate_twitter,
    hub_vertex,
)
from repro.propertygraph.traversal import (
    count_paths,
    count_triangles,
    degree_histogram,
)


@pytest.fixture(scope="module")
def setup():
    graph = generate_twitter(TwitterConfig(egos=6, seed=11))
    stores = {}
    for model in (MODEL_NG, MODEL_SP):
        store = PropertyGraphRdfStore(model=model)
        store.load(graph)
        stores[model] = store
    tag = connected_tag(graph)
    hub = hub_vertex(graph)
    hub_iri = stores[MODEL_NG].vocabulary.vertex_iri(hub).value
    return graph, stores, tag, hub, hub_iri


class TestTable6Shapes(object):
    def test_dataset_characteristics(self, setup):
        graph, _, _, _, _ = setup
        pg = measure_property_graph(graph)
        assert pg.edges > pg.vertices
        assert pg.edge_kvs > 0 and pg.node_kvs > 0
        follows = sum(1 for e in graph.edges() if e.label == "follows")
        assert follows > (pg.edges - follows)  # follows >> knows


class TestTables7And8(object):
    def test_sp_ng_deltas(self, setup):
        graph, stores, _, _, _ = setup
        ng = measure_rdf(stores[MODEL_NG].quads())
        sp = measure_rdf(stores[MODEL_SP].quads())
        pg = measure_property_graph(graph)
        assert sp.total_quads - ng.total_quads == 2 * pg.edges
        assert ng.named_graphs == pg.edges and sp.named_graphs == 0
        assert sp.distinct_predicates == ng.distinct_predicates + pg.edges + 1
        assert sp.distinct_objects == ng.distinct_objects + len(graph.labels())

    def test_predictions_match(self, setup):
        graph, stores, _, _, _ = setup
        pg = measure_property_graph(graph)
        for model, store in stores.items():
            assert (
                measure_rdf(store.quads()).total_quads
                == predict_rdf(pg, model).total_quads
            ), model


class TestTable9(object):
    def test_storage_shape(self, setup):
        _, stores, _, _, _ = setup
        ng = stores[MODEL_NG].storage_report()
        sp = stores[MODEL_SP].storage_report()
        assert sp.triples_table > ng.triples_table
        assert "GSPC" in ng.indexes and "GSPC" not in sp.indexes


class TestExperimentQueries(object):
    def test_all_results_equal_across_models(self, setup):
        _, stores, tag, _, hub_iri = setup
        names = ["EQ1", "EQ2", "EQ3", "EQ4", "EQ5", "EQ6", "EQ7", "EQ8",
                 "EQ9", "EQ10", "EQ11a", "EQ11b", "EQ11c", "EQ12"]
        for name in names:
            counts = {}
            for model, store in stores.items():
                query = store.queries.experiment_queries(tag, hub_iri)[name]
                result = store.select(query)
                if name.startswith("EQ11") or name == "EQ12":
                    counts[model] = result.scalar().to_python()
                else:
                    counts[model] = len(result)
            assert counts[MODEL_NG] == counts[MODEL_SP], (name, counts)

    def test_sparql_agrees_with_procedural(self, setup):
        graph, stores, _, hub, hub_iri = setup
        store = stores[MODEL_NG]
        for hops in (1, 2, 3, 4):
            sparql = store.select(
                store.queries.eq11(hub_iri, hops)
            ).scalar().to_python()
            assert sparql == count_paths(graph, hub, "follows", hops), hops
        triangles = store.select(store.queries.eq12()).scalar().to_python()
        assert triangles == count_triangles(graph, "follows")

    def test_degree_distributions_agree(self, setup):
        graph, stores, _, _, _ = setup
        in_native, out_native = degree_histogram(graph, ["knows", "follows"])
        store = stores[MODEL_NG]
        eq9 = store.select(store.queries.eq9())
        assert {
            r["inDeg"].to_python(): r["cnt"].to_python() for r in eq9
        } == in_native

    def test_path_counts_grow(self, setup):
        _, stores, _, _, hub_iri = setup
        store = stores[MODEL_NG]
        counts = [
            store.select(store.queries.eq11(hub_iri, hops)).scalar().to_python()
            for hops in range(1, 5)
        ]
        assert counts == sorted(counts), counts  # monotone growth


class TestEdgeKvAccessCost(object):
    def test_ng_needs_fewer_joins_than_sp_on_eq7(self, setup):
        """The structural claim behind Figure 6: SP's EQ7 pattern has
        more triple patterns (joins) than NG's."""
        _, stores, tag, _, _ = setup
        ng_text = stores[MODEL_NG].queries.eq7(tag)
        sp_text = stores[MODEL_SP].queries.eq7(tag)
        assert sp_text.count(" . ") > ng_text.count(" . ")

    def test_ng_beats_sp_on_eq7_wall_clock(self, setup):
        _, stores, tag, _, hub_iri = setup

        def timed(model):
            store = stores[model]
            query = store.queries.experiment_queries(tag, hub_iri)["EQ7"]
            store.select(query)
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                store.select(query)
                best = min(best, time.perf_counter() - start)
            return best

        # Generous factor: tiny scale, but SP's extra joins must show.
        assert timed(MODEL_NG) < timed(MODEL_SP) * 1.5


class TestRoundTripAtScale(object):
    def test_twitter_roundtrip(self, setup):
        graph, stores, _, _, _ = setup
        for model, store in stores.items():
            rebuilt = store.to_property_graph()
            assert rebuilt.vertex_count == graph.vertex_count, model
            assert rebuilt.edge_count == graph.edge_count, model
            assert rebuilt.vertex_kv_count() == graph.vertex_kv_count(), model
            assert rebuilt.edge_kv_count() == graph.edge_kv_count(), model


class TestReporting(object):
    def test_render_table(self):
        text = render_table("T", ["a", "b"], [[1, 2.5], [30, "x"]])
        assert "T" in text and "2.500" in text and "30" in text

    def test_render_table_empty(self):
        text = render_table("T", ["a"], [])
        assert "a" in text

    def test_render_series(self):
        text = render_series("S", "x", {"NG": {1: 2}, "SP": {1: 3}})
        assert "NG" in text and "SP" in text


class TestBenchHarness(object):
    def test_timed_query_methodology(self):
        """timed_query runs a warm-up then one measured run (Section 4.4)."""
        from repro.bench.harness import timed_query
        from repro.core import PropertyGraphRdfStore
        from repro.propertygraph import PropertyGraph

        graph = PropertyGraph()
        graph.add_vertex(1, {"name": "Amy"})
        store = PropertyGraphRdfStore(model="NG")
        store.load(graph)
        outcome = timed_query(store, "SELECT ?x WHERE { ?x k:name ?n }")
        assert outcome["results"] == 1
        assert outcome["seconds"] >= 0

    def test_scale_config_env(self, monkeypatch):
        from repro.bench.harness import scale_config

        monkeypatch.setenv("REPRO_SCALE", "7")
        assert scale_config().egos == 7
