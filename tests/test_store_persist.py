"""Tests for saving/restoring semantic networks."""

import os

import pytest

from repro.rdf import IRI, Literal, Quad
from repro.store import SemanticNetwork
from repro.store.persist import load_network, repair_snapshot, save_network

EX = "http://ex/"


def ex(name):
    return IRI(EX + name)


@pytest.fixture
def network():
    net = SemanticNetwork()
    net.create_model("topology", ["PCSGM", "GSPCM"])
    net.create_model("kvs")
    net.bulk_load("topology", [
        Quad(ex("a"), ex("p"), ex("b"), ex("e1")),
        Quad(ex("b"), ex("p"), ex("c"), ex("e2")),
    ])
    net.bulk_load("kvs", [
        Quad(ex("a"), ex("name"), Literal("A")),
        Quad(ex("e1"), ex("since"), Literal.from_python(2007), ex("e1")),
    ])
    net.create_virtual_model("all", ["topology", "kvs"])
    return net


class TestSaveLoad:
    def test_roundtrip_contents(self, network, tmp_path):
        counts = save_network(network, str(tmp_path))
        assert counts == {"topology": 2, "kvs": 2}
        restored = load_network(str(tmp_path))
        assert set(restored.model_names) == {"topology", "kvs"}
        assert sorted(map(repr, restored.quads("topology"))) == sorted(
            map(repr, network.quads("topology"))
        )
        assert sorted(map(repr, restored.quads("kvs"))) == sorted(
            map(repr, network.quads("kvs"))
        )

    def test_index_specs_restored(self, network, tmp_path):
        save_network(network, str(tmp_path))
        restored = load_network(str(tmp_path))
        assert restored.model("topology").index_specs == ["PCSG", "GSPC"]
        assert restored.model("kvs").index_specs == ["PCSG", "PSCG"]

    def test_virtual_models_restored(self, network, tmp_path):
        save_network(network, str(tmp_path))
        restored = load_network(str(tmp_path))
        assert restored.virtual_model_names == ["all"]
        assert len(restored.model("all")) == 4

    def test_files_written(self, network, tmp_path):
        save_network(network, str(tmp_path))
        names = set(os.listdir(str(tmp_path)))
        assert {"manifest.json", "topology.nq", "kvs.nq"} <= names

    def test_restored_network_queryable(self, network, tmp_path):
        from repro.sparql import SparqlEngine

        save_network(network, str(tmp_path))
        restored = load_network(str(tmp_path))
        engine = SparqlEngine(restored, prefixes={"ex": EX},
                              default_model="all")
        result = engine.select(
            "SELECT ?g ?y WHERE { GRAPH ?g { ?x ex:p ?b . ?g ex:since ?y } }"
        )
        assert len(result) == 1

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_network(str(tmp_path))


class TestAtomicSave:
    def test_save_replaces_existing_snapshot(self, network, tmp_path):
        target = str(tmp_path / "snap")
        save_network(network, target)
        network.insert("kvs", Quad(ex("b"), ex("name"), Literal("B")))
        save_network(network, target)
        restored = load_network(target)
        assert len(list(restored.quads("kvs"))) == 3
        # No staging or parked directories left behind.
        leftovers = [
            name for name in os.listdir(str(tmp_path))
            if ".tmp-" in name or ".old-" in name
        ]
        assert leftovers == []

    def test_failed_save_leaves_target_untouched(self, network, tmp_path):
        target = str(tmp_path / "snap")
        save_network(network, target)

        class Exploding:
            """Network facade whose second model write fails mid-save."""

            model_names = network.model_names
            virtual_model_names = network.virtual_model_names

            def model(self, name):
                return network.model(name)

            def quads(self, name):
                if name == network.model_names[1]:
                    raise OSError("disk full")
                return network.quads(name)

        with pytest.raises(OSError):
            save_network(Exploding(), target)
        # The old snapshot is fully intact and still loads.
        restored = load_network(target)
        assert sorted(restored.model_names) == sorted(network.model_names)
        leftovers = [
            name for name in os.listdir(str(tmp_path)) if ".tmp-" in name
        ]
        assert leftovers == []

    def test_stale_parked_directory_tolerated(self, network, tmp_path):
        target = str(tmp_path / "snap")
        save_network(network, target)
        parked = f"{target}.old-{os.getpid()}"
        os.makedirs(parked)  # leftover from a simulated earlier crash
        with open(os.path.join(parked, "junk"), "w") as handle:
            handle.write("stale")
        save_network(network, target)
        assert not os.path.exists(parked)
        assert load_network(target)

    def test_fresh_save_is_single_rename(self, network, tmp_path):
        # A fresh save must not leave intermediate states visible: after
        # save_network returns, the manifest is present (commit record).
        target = str(tmp_path / "fresh" / "snap")
        save_network(network, target)
        assert os.path.exists(os.path.join(target, "manifest.json"))


class TestInterruptedSwapRepair:
    """Every crash window of the replace-existing swap is recoverable.

    The swap goes staging -> <dir>.new -> (park old as <dir>.old) ->
    <dir>; these tests reconstruct the on-disk state a crash leaves at
    each step and check repair_snapshot finishes from the survivor.
    """

    def test_published_new_is_finished(self, network, tmp_path):
        # Crash after parking the old snapshot: only <dir>.new remains —
        # the window that used to lose the checkpoint entirely.
        target = str(tmp_path / "snap")
        save_network(network, target)
        os.rename(target, target + ".new")
        assert repair_snapshot(target)
        assert load_network(target)
        assert not os.path.exists(target + ".new")

    def test_new_preferred_over_parked_old(self, network, tmp_path):
        # Crash between parking the old snapshot and the final rename:
        # both .old and .new are complete; the newer one wins.
        target = str(tmp_path / "snap")
        save_network(network, target)
        os.rename(target, target + ".old")
        network.insert("kvs", Quad(ex("b"), ex("name"), Literal("B")))
        save_network(network, target)
        os.rename(target, target + ".new")
        assert repair_snapshot(target)
        restored = load_network(target)
        assert len(list(restored.quads("kvs"))) == 3
        assert not os.path.exists(target + ".old")
        assert not os.path.exists(target + ".new")

    def test_complete_directory_wins_over_leftover_new(self, network, tmp_path):
        # Crash after publishing .new but before touching the old
        # snapshot: the old directory is still the committed state.
        target = str(tmp_path / "snap")
        save_network(network, target)
        save_network(network, target + ".new")
        assert repair_snapshot(target)
        assert load_network(target)
        assert not os.path.exists(target + ".new")

    def test_legacy_pid_keyed_old_restored(self, network, tmp_path):
        # A crash under the old pid-keyed protocol could leave only a
        # parked .old-<pid> snapshot; repair restores it too.
        target = str(tmp_path / "snap")
        save_network(network, target)
        os.rename(target, f"{target}.old-12345")
        assert repair_snapshot(target)
        assert load_network(target)
        assert not os.path.exists(f"{target}.old-12345")

    def test_save_after_interrupted_swap(self, network, tmp_path):
        # save_network itself repairs before swapping, so a save right
        # after a crash both recovers and replaces cleanly.
        target = str(tmp_path / "snap")
        save_network(network, target)
        os.rename(target, target + ".new")
        save_network(network, target)
        assert load_network(target)
        assert os.listdir(str(tmp_path)) == ["snap"]

    def test_repair_without_any_snapshot(self, tmp_path):
        target = str(tmp_path / "snap")
        os.makedirs(target + ".tmp-junk")
        assert repair_snapshot(target) is False
        assert os.listdir(str(tmp_path)) == []
