"""Planner tests: index selection, join ordering, EXPLAIN (Table 5)."""

import pytest

from repro.rdf import IRI, Literal, Quad
from repro.store import SemanticNetwork
from repro.sparql import SparqlEngine
from repro.sparql.plan import (
    EncodedPattern,
    choose_join_method,
    order_patterns,
)

EX = "http://ex/"


def ex(name):
    return IRI(EX + name)


@pytest.fixture
def network():
    """Skewed data: many ex:p edges, one ex:name triple."""
    net = SemanticNetwork()
    net.create_model(
        "m", index_specs=["PCSGM", "PSCGM", "SPCGM", "GSPCM", "SCPGM"]
    )
    quads = [Quad(ex(f"s{i}"), ex("p"), ex(f"o{i % 7}")) for i in range(100)]
    quads.append(Quad(ex("s0"), ex("name"), Literal("zero")))
    net.bulk_load("m", quads)
    return net


@pytest.fixture
def engine(network):
    return SparqlEngine(network, prefixes={"ex": EX}, default_model="m")


class TestIndexSelection:
    def test_predicate_bound_uses_pcsg(self, network):
        model = network.model("m")
        p = network.lookup_term(ex("p"))
        index, length = model.choose_index((None, p, None, None))
        assert index.spec in ("PCSG", "PSCG")
        assert length == 1

    def test_predicate_and_subject_uses_pscg(self, network):
        model = network.model("m")
        p = network.lookup_term(ex("p"))
        s = network.lookup_term(ex("s0"))
        index, length = model.choose_index((s, p, None, None))
        assert index.spec == "PSCG"
        assert length == 2

    def test_subject_only_uses_subject_index(self, network):
        model = network.model("m")
        s = network.lookup_term(ex("s0"))
        index, _ = model.choose_index((s, None, None, None))
        assert index.spec in ("SPCG", "SCPG")

    def test_graph_bound_uses_graph_index(self, network):
        model = network.model("m")
        index, _ = model.choose_index((None, None, None, 42))
        assert index.spec == "GSPC"


class TestJoinOrdering:
    def test_selective_pattern_first(self, network):
        model = network.model("m")
        p = network.lookup_term(ex("p"))
        name = network.lookup_term(ex("name"))
        patterns = [
            EncodedPattern("x", p, "y"),        # 100 rows
            EncodedPattern("x", name, "n"),     # 1 row
        ]
        ordered = order_patterns(patterns, model, None)
        assert ordered[0].predicate == name

    def test_connected_patterns_preferred_over_cartesian(self, network):
        model = network.model("m")
        p = network.lookup_term(ex("p"))
        name = network.lookup_term(ex("name"))
        patterns = [
            EncodedPattern("a", name, "n"),   # selective, disconnected from x/y
            EncodedPattern("x", p, "y"),
            EncodedPattern("y", p, "z"),
        ]
        ordered = order_patterns(patterns, model, None)
        # After the selective seed, the next chosen pattern must connect
        # if possible; here nothing connects to ?a, so the two p-patterns
        # are ordered between themselves by estimate and connectivity.
        assert ordered[0].predicate == name
        assert ordered[1].variables() & ordered[2].variables()


class TestJoinMethod:
    def test_small_inputs_use_nlj(self):
        assert choose_join_method(10, 1_000_000) == "NLJ"

    def test_large_input_with_comparable_scan_uses_hash(self):
        assert choose_join_method(100_000, 200_000) == "hash join"

    def test_large_input_with_huge_scan_uses_nlj(self):
        assert choose_join_method(10_000, 100_000_000) == "NLJ"


class TestExplain:
    def test_explain_triangle_query(self, engine):
        lines = engine.explain(
            "SELECT ?x WHERE { ?x ex:p ?y . ?y ex:p ?z . ?z ex:p ?x }"
        )
        assert len(lines) == 3
        # First pattern: only P bound -> P-leading index range scan.
        assert "PCSGM" in lines[0] or "PSCGM" in lines[0]
        # Later patterns have bound vars: PSCG (P,S prefix) is usable.
        assert "PSCGM" in lines[1]
        assert "index range scan" in lines[0]

    def test_explain_q3_shape(self, engine):
        """Paper Table 5 / Q3: constant P and C -> PCSGM; then S-bound
        probe with a filter."""
        lines = engine.explain(
            'SELECT ?v WHERE { ?x ex:name "zero" . ?x ?k ?v '
            "FILTER isLiteral(?v) }"
        )
        assert "PCSGM" in lines[0]
        assert any("SCPGM" in line or "SPCGM" in line for line in lines[1:])

    def test_explain_reports_path_steps(self, engine):
        lines = engine.explain("SELECT ?y WHERE { ex:s0 ex:p/ex:p ?y }")
        assert any("property path" in line for line in lines)

    def test_explain_graph_clause(self, engine):
        lines = engine.explain(
            "SELECT ?s WHERE { GRAPH ?g { ?s ex:p ?o } }"
        )
        assert len(lines) == 1
