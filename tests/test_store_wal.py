"""Unit tests for the write-ahead log format and fault injection."""

import os

import pytest

from repro.obs import metrics
from repro.rdf import IRI, Literal, Quad
from repro.store.wal import (
    MAX_RECORD_BYTES,
    WAL_MAGIC,
    WalError,
    WriteAheadLog,
    bulk_load_record,
    clear_record,
    create_model_record,
    delete_record,
    insert_record,
    line_to_quad,
    quad_to_line,
    read_wal,
    term_to_text,
    text_to_term,
    truncate_wal,
)
from repro.testing.faults import SimulatedCrash, torn_file_factory

EX = "http://ex/"


def ex(name):
    return IRI(EX + name)


@pytest.fixture(autouse=True)
def _metrics_off():
    metrics.disable()
    metrics.reset()
    yield
    metrics.disable()
    metrics.reset()


def wal_path(tmp_path):
    return str(tmp_path / "wal.log")


class TestAppendRead:
    def test_roundtrip(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path) as log:
            log.append({"op": "a", "n": 1})
            log.append({"op": "b", "payload": "x" * 100})
        records, stats = read_wal(path)
        assert records == [{"op": "a", "n": 1}, {"op": "b", "payload": "x" * 100}]
        assert stats.records == 2
        assert stats.torn_bytes == 0
        assert stats.corrupt_records == 0
        assert stats.valid_bytes == os.path.getsize(path)

    def test_fresh_file_has_magic(self, tmp_path):
        path = wal_path(tmp_path)
        WriteAheadLog(path).close()
        with open(path, "rb") as handle:
            assert handle.read() == WAL_MAGIC

    def test_reopen_appends(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path) as log:
            log.append({"n": 1})
        with WriteAheadLog(path) as log:
            log.append({"n": 2})
        records, _ = read_wal(path)
        assert [r["n"] for r in records] == [1, 2]

    def test_bad_magic_raises(self, tmp_path):
        path = wal_path(tmp_path)
        with open(path, "wb") as handle:
            handle.write(b"NOTAWAL!" + b"\x00" * 16)
        with pytest.raises(WalError):
            read_wal(path)

    def test_bad_fsync_policy(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(wal_path(tmp_path), fsync="sometimes")

    def test_fsync_policies_accepted(self, tmp_path):
        for policy in ("always", "batch", "none"):
            path = str(tmp_path / f"wal-{policy}.log")
            with WriteAheadLog(path, fsync=policy) as log:
                log.append({"policy": policy})
                log.sync()
            records, _ = read_wal(path)
            assert records == [{"policy": policy}]


class TestTornAndCorrupt:
    def test_torn_tail_dropped(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path) as log:
            log.append({"n": 1})
            boundary = os.path.getsize(path)
            log.append({"n": 2})
        with open(path, "rb+") as handle:
            handle.truncate(os.path.getsize(path) - 3)
        records, stats = read_wal(path)
        assert [r["n"] for r in records] == [1]
        assert stats.valid_bytes == boundary
        assert stats.torn_bytes > 0
        assert stats.corrupt_records == 0

    def test_partial_header_dropped(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path) as log:
            log.append({"n": 1})
        with open(path, "ab") as handle:
            handle.write(b"\x05")  # one byte of a next header
        records, stats = read_wal(path)
        assert [r["n"] for r in records] == [1]
        assert stats.torn_bytes == 1

    def test_corrupt_checksum_stops_replay(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path) as log:
            log.append({"n": 1})
            second_at = os.path.getsize(path)
            log.append({"n": 2})
            log.append({"n": 3})
        with open(path, "rb+") as handle:
            handle.seek(second_at + 8 + 2)  # inside record 2's payload
            byte = handle.read(1)
            handle.seek(second_at + 8 + 2)
            handle.write(bytes([byte[0] ^ 0xFF]))
        records, stats = read_wal(path)
        # Everything after the unreadable record is untrusted.
        assert [r["n"] for r in records] == [1]
        assert stats.corrupt_records == 1
        assert stats.valid_bytes == second_at

    def test_garbage_length_is_corruption(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path) as log:
            log.append({"n": 1})
        import struct

        with open(path, "ab") as handle:
            handle.write(struct.pack("<II", MAX_RECORD_BYTES + 1, 0))
            handle.write(b"junk")
        records, stats = read_wal(path)
        assert [r["n"] for r in records] == [1]
        assert stats.corrupt_records == 1

    def test_truncate_then_append(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path) as log:
            log.append({"n": 1})
            log.append({"n": 2})
        with open(path, "rb+") as handle:
            handle.truncate(os.path.getsize(path) - 1)
        _, stats = read_wal(path)
        truncate_wal(path, stats.valid_bytes)
        with WriteAheadLog(path) as log:
            log.append({"n": 3})
        records, stats = read_wal(path)
        assert [r["n"] for r in records] == [1, 3]
        assert stats.torn_bytes == 0

    def test_empty_file_is_torn_creation(self, tmp_path):
        path = wal_path(tmp_path)
        with open(path, "wb"):
            pass
        records, stats = read_wal(path)
        assert records == []
        assert stats.valid_bytes == 0


class TestCodecs:
    def test_quad_roundtrip(self):
        quad = Quad(ex("s"), ex("p"), Literal("v\nwith newline"), ex("g"))
        assert line_to_quad(quad_to_line(quad)) == quad

    def test_term_roundtrip(self):
        assert text_to_term(None) is None
        assert term_to_text(None) is None
        assert text_to_term(term_to_text(ex("g"))) == ex("g")

    def test_record_constructors(self):
        quad = Quad(ex("s"), ex("p"), ex("o"))
        assert insert_record("m", quad)["op"] == "insert"
        assert delete_record("m", quad)["model"] == "m"
        assert bulk_load_record("m", [quad, quad])["quads"]
        assert clear_record("m", None)["graph"] is None
        assert create_model_record("m", ["PCSG"])["indexes"] == ["PCSG"]


class TestFaultInjection:
    def test_torn_write_leaves_committed_prefix(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path) as log:
            log.append({"n": 1})
        committed = os.path.getsize(path)
        # Allow 10 more bytes: the next append tears mid-frame.
        log = WriteAheadLog(path, file_factory=torn_file_factory(10))
        with pytest.raises(SimulatedCrash):
            log.append({"n": 2, "pad": "x" * 50})
        records, stats = read_wal(path)
        assert [r["n"] for r in records] == [1]
        assert stats.valid_bytes == committed
        assert stats.torn_bytes == 10

    def test_crash_at_every_offset_preserves_prefix(self, tmp_path):
        """Sweep the crash point over every byte of a 3-record log."""
        reference = str(tmp_path / "ref.log")
        with WriteAheadLog(reference) as log:
            sizes = [log.append({"n": i, "pad": "x" * i}) for i in range(3)]
        total = os.path.getsize(reference)
        boundaries = [len(WAL_MAGIC)]
        for size in sizes:
            boundaries.append(boundaries[-1] + size)
        for budget in range(total + 1):
            path = str(tmp_path / f"crash-{budget}.log")
            try:
                # A small budget can tear the magic header itself,
                # crashing inside the constructor.
                log = WriteAheadLog(path, file_factory=torn_file_factory(budget))
                for i in range(3):
                    log.append({"n": i, "pad": "x" * i})
                log.close()
            except SimulatedCrash:
                pass
            records, stats = read_wal(path)
            # The intact prefix is exactly the records whose frames fit
            # entirely within the byte budget.
            expected = sum(1 for b in boundaries[1:] if b <= budget)
            assert len(records) == expected, budget
            assert stats.valid_bytes <= max(budget, 0)

    def test_append_failure_poisons_log(self, tmp_path):
        # A failed append can leave a torn frame mid-file; appending
        # after it would hide every later record from read_wal (which
        # stops at the first bad frame).  The log must refuse instead.
        path = wal_path(tmp_path)
        log = WriteAheadLog(
            path, file_factory=torn_file_factory(len(WAL_MAGIC) + 10)
        )
        assert not log.failed
        with pytest.raises(SimulatedCrash):
            log.append({"n": 1, "pad": "x" * 50})
        assert log.failed
        with pytest.raises(WalError):
            log.append({"n": 2})
        with pytest.raises(WalError):
            log.sync()
        log.close()
        records, stats = read_wal(path)
        assert records == []
        assert stats.torn_bytes == 10

    def test_failed_fsync_poisons_log(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path) as log:
            log.append({"n": 1})
        log = WriteAheadLog(
            path, file_factory=torn_file_factory(10 ** 6, fail_fsync=True)
        )
        with pytest.raises(SimulatedCrash):
            log.append({"n": 2})
        assert log.failed
        with pytest.raises(WalError):
            log.append({"n": 3})
        log.close()

    def test_metrics_counters(self, tmp_path):
        metrics.enable()
        path = wal_path(tmp_path)
        with WriteAheadLog(path) as log:
            log.append({"n": 1})
        registry = metrics.registry()
        assert registry.counter("wal.appends") == 1
        assert registry.counter("wal.bytes") > 0
        assert registry.counter("wal.fsyncs") >= 1


class TestIncrementalCursor:
    """read_wal_from: the tailing API replication senders rely on."""

    def test_cursor_resumes_where_the_last_read_stopped(self, tmp_path):
        from repro.store.wal import read_wal_from

        path = wal_path(tmp_path)
        with WriteAheadLog(path) as log:
            log.append({"n": 1})
            log.append({"n": 2})
        records, stats = read_wal_from(path, 0)
        assert [r["n"] for r in records] == [1, 2]
        cursor = stats.valid_bytes
        # Nothing new yet: an empty incremental read, same cursor back.
        records, stats = read_wal_from(path, cursor)
        assert records == []
        assert stats.valid_bytes == cursor
        with WriteAheadLog(path) as log:
            log.append({"n": 3})
        records, stats = read_wal_from(path, cursor)
        assert [r["n"] for r in records] == [3]
        assert stats.valid_bytes == os.path.getsize(path)

    def test_full_scan_and_cursor_scan_agree(self, tmp_path):
        from repro.store.wal import read_wal_from

        path = wal_path(tmp_path)
        with WriteAheadLog(path) as log:
            for n in range(10):
                log.append({"n": n})
        full, full_stats = read_wal(path)
        incremental = []
        cursor = 0
        while True:
            batch, stats = read_wal_from(path, cursor)
            if not batch:
                break
            incremental.extend(batch)
            cursor = stats.valid_bytes
        assert incremental == full
        assert cursor == full_stats.valid_bytes

    def test_torn_tail_mid_tail_read_matches_full_scan(self, tmp_path):
        """Regression: a torn tail hit through the cursor path must be
        detected and truncated exactly as the full-scan path does."""
        from repro.store.wal import read_wal_from

        path = wal_path(tmp_path)
        with WriteAheadLog(path) as log:
            log.append({"n": 1})
            log.append({"n": 2})
        with open(path, "rb") as handle:
            data = handle.read()
        # Chop 3 bytes off the tail: record two becomes torn.
        with open(path, "wb") as handle:
            handle.write(data[:-3])
        full_records, full_stats = read_wal(path)
        assert [r["n"] for r in full_records] == [1]
        # Cursor path: resume after record one and hit the same tear.
        mid_cursor = full_stats.valid_bytes
        tail_records, tail_stats = read_wal_from(path, mid_cursor)
        assert tail_records == []
        assert tail_stats.valid_bytes == full_stats.valid_bytes
        assert tail_stats.torn_bytes == full_stats.torn_bytes
        assert tail_stats.corrupt_records == 0
        truncate_wal(path, tail_stats.valid_bytes)
        assert os.path.getsize(path) == tail_stats.valid_bytes

    def test_corrupt_record_mid_tail_read_matches_full_scan(self, tmp_path):
        from repro.store.wal import read_wal_from

        path = wal_path(tmp_path)
        with WriteAheadLog(path) as log:
            log.append({"n": 1})
        _, first = read_wal(path)
        with WriteAheadLog(path) as log:
            log.append({"n": 2})
        # Flip a payload byte inside record two.
        with open(path, "rb+") as handle:
            handle.seek(first.valid_bytes + 8)  # past the frame header
            byte = handle.read(1)
            handle.seek(first.valid_bytes + 8)
            handle.write(bytes([byte[0] ^ 0xFF]))
        full_records, full_stats = read_wal(path)
        tail_records, tail_stats = read_wal_from(path, first.valid_bytes)
        assert [r["n"] for r in full_records] == [1]
        assert tail_records == []
        assert tail_stats.corrupt_records == full_stats.corrupt_records == 1
        assert tail_stats.valid_bytes == full_stats.valid_bytes

    def test_cursor_past_end_raises(self, tmp_path):
        from repro.store.wal import read_wal_from

        path = wal_path(tmp_path)
        with WriteAheadLog(path) as log:
            log.append({"n": 1})
        with pytest.raises(WalError):
            read_wal_from(path, os.path.getsize(path) + 1)
