"""Evaluator tests: aggregation, GROUP BY, HAVING, subquery aggregation."""

import pytest

from repro.rdf import IRI, Literal, Quad
from repro.store import SemanticNetwork
from repro.sparql import SparqlEngine

EX = "http://ex/"


def ex(name):
    return IRI(EX + name)


@pytest.fixture
def degree_engine():
    """Directed graph for degree-distribution style aggregates.

    out-degrees: a->b, a->c, a->d (3); b->c (1); c->d (1).
    """
    net = SemanticNetwork()
    net.create_model("m")
    net.bulk_load(
        "m",
        [
            Quad(ex("a"), ex("p"), ex("b")),
            Quad(ex("a"), ex("p"), ex("c")),
            Quad(ex("a"), ex("p"), ex("d")),
            Quad(ex("b"), ex("p"), ex("c")),
            Quad(ex("c"), ex("p"), ex("d")),
            Quad(ex("a"), ex("score"), Literal.from_python(10)),
            Quad(ex("b"), ex("score"), Literal.from_python(20)),
            Quad(ex("c"), ex("score"), Literal.from_python(20)),
        ],
    )
    return SparqlEngine(net, prefixes={"ex": EX}, default_model="m")


class TestBasicAggregates:
    def test_count_star(self, degree_engine):
        result = degree_engine.select(
            "SELECT (COUNT(*) AS ?c) WHERE { ?s ex:p ?o }"
        )
        assert result.scalar().to_python() == 5

    def test_count_var(self, degree_engine):
        result = degree_engine.select(
            "SELECT (COUNT(?o) AS ?c) WHERE { ?s ex:p ?o }"
        )
        assert result.scalar().to_python() == 5

    def test_count_distinct(self, degree_engine):
        result = degree_engine.select(
            "SELECT (COUNT(DISTINCT ?o) AS ?c) WHERE { ?s ex:p ?o }"
        )
        assert result.scalar().to_python() == 3  # b, c, d

    def test_sum_avg_min_max(self, degree_engine):
        result = degree_engine.select(
            "SELECT (SUM(?v) AS ?s) (AVG(?v) AS ?a) (MIN(?v) AS ?mn) "
            "(MAX(?v) AS ?mx) WHERE { ?x ex:score ?v }"
        )
        row = result[0]
        assert row["s"].to_python() == 50
        assert abs(row["a"].to_python() - 50 / 3) < 1e-9
        assert row["mn"].to_python() == 10
        assert row["mx"].to_python() == 20

    def test_sample(self, degree_engine):
        result = degree_engine.select(
            "SELECT (SAMPLE(?v) AS ?s) WHERE { ?x ex:score ?v }"
        )
        assert result.scalar().to_python() in (10, 20)

    def test_group_concat(self, degree_engine):
        result = degree_engine.select(
            'SELECT (GROUP_CONCAT(?v; SEPARATOR=",") AS ?s) '
            "WHERE { ex:a ex:score ?v }"
        )
        assert result.scalar().lexical == "10"

    def test_count_over_empty_group(self, degree_engine):
        result = degree_engine.select(
            "SELECT (COUNT(*) AS ?c) WHERE { ?s ex:nothing ?o }"
        )
        assert result.scalar().to_python() == 0

    def test_sum_over_empty_is_zero(self, degree_engine):
        result = degree_engine.select(
            "SELECT (SUM(?o) AS ?c) WHERE { ?s ex:nothing ?o }"
        )
        assert result.scalar().to_python() == 0


class TestGroupBy:
    def test_group_by_subject(self, degree_engine):
        result = degree_engine.select(
            "SELECT ?s (COUNT(*) AS ?deg) WHERE { ?s ex:p ?o } GROUP BY ?s"
        )
        degrees = {row["s"].value: row["deg"].to_python() for row in result}
        assert degrees == {EX + "a": 3, EX + "b": 1, EX + "c": 1}

    def test_group_by_value(self, degree_engine):
        result = degree_engine.select(
            "SELECT ?v (COUNT(*) AS ?c) WHERE { ?x ex:score ?v } GROUP BY ?v"
        )
        counts = {row["v"].to_python(): row["c"].to_python() for row in result}
        assert counts == {10: 1, 20: 2}

    def test_having(self, degree_engine):
        result = degree_engine.select(
            "SELECT ?s (COUNT(*) AS ?deg) WHERE { ?s ex:p ?o } "
            "GROUP BY ?s HAVING (COUNT(*) > 1)"
        )
        assert len(result) == 1
        assert result[0]["s"] == ex("a")

    def test_order_by_aggregated_column(self, degree_engine):
        result = degree_engine.select(
            "SELECT ?s (COUNT(*) AS ?deg) WHERE { ?s ex:p ?o } "
            "GROUP BY ?s ORDER BY DESC(?deg) LIMIT 1"
        )
        assert result[0]["s"] == ex("a")

    def test_degree_distribution_nested_query(self, degree_engine):
        """The EQ10 shape: distribution of out-degrees."""
        result = degree_engine.select(
            "SELECT ?deg (COUNT(*) AS ?cnt) WHERE { "
            "  SELECT ?s (COUNT(*) AS ?deg) WHERE { ?s ex:p ?o } GROUP BY ?s "
            "} GROUP BY ?deg ORDER BY DESC(?deg)"
        )
        rows = [(r["deg"].to_python(), r["cnt"].to_python()) for r in result]
        assert rows == [(3, 1), (1, 2)]

    def test_aggregate_expression_arithmetic(self, degree_engine):
        result = degree_engine.select(
            "SELECT (COUNT(*) * 2 AS ?c) WHERE { ?s ex:p ?o }"
        )
        assert result.scalar().to_python() == 10

    def test_group_key_projected_without_aggregate(self, degree_engine):
        result = degree_engine.select(
            "SELECT ?s WHERE { ?s ex:p ?o } GROUP BY ?s"
        )
        assert len(result) == 3


class TestOrderByAggregates:
    def test_order_by_count_desc(self, degree_engine):
        result = degree_engine.select(
            "SELECT ?s WHERE { ?s ex:p ?o } GROUP BY ?s "
            "ORDER BY DESC(COUNT(*))"
        )
        assert result[0]["s"].value.endswith("/a")  # out-degree 3 first
        assert result.variables == ("s",)  # hidden order column dropped

    def test_order_by_aggregate_expression(self, degree_engine):
        result = degree_engine.select(
            "SELECT ?s WHERE { ?s ex:p ?o } GROUP BY ?s "
            "ORDER BY (0 - COUNT(*)) ?s"
        )
        assert result[0]["s"].value.endswith("/a")

    def test_order_by_mixes_plain_and_aggregate_keys(self, degree_engine):
        result = degree_engine.select(
            "SELECT ?s (COUNT(*) AS ?c) WHERE { ?s ex:p ?o } GROUP BY ?s "
            "ORDER BY DESC(COUNT(*)) ?s"
        )
        counts = [row["c"].to_python() for row in result]
        assert counts == sorted(counts, reverse=True)
