"""Deep traversal: SPARQL property paths vs. procedural Gremlin style.

The paper's Experiment 4 counts paths of length 1..5 from a hub node
with SPARQL 1.1 sequence paths (EQ11a-e), and its conclusion notes that
for cases property paths cannot express (length limits, returning the
path itself), "an alternative ... is to perform traversal procedurally
similar to the approach of Gremlin".  This example does both and checks
they agree.

Run:  python examples/path_traversal.py
Env:  REPRO_SCALE=<egos>  (default 24)
"""

import time

from repro import PropertyGraphRdfStore
from repro.bench.harness import scale_config
from repro.bench.report import render_series
from repro.datasets.twitter import generate_twitter, hub_vertex
from repro.propertygraph.traversal import Traversal, count_paths


def main() -> None:
    graph = generate_twitter(scale_config())
    store = PropertyGraphRdfStore(model="NG")
    store.load(graph)

    hub = hub_vertex(graph)
    hub_iri = store.vocabulary.vertex_iri(hub).value
    print(f"Hub node: <{hub_iri}> "
          f"(out-degree {graph.out_degree(hub, 'follows')})")
    print()

    sparql_times, sparql_counts = {}, {}
    procedural_counts = {}
    for hops in range(1, 6):
        query = store.queries.eq11(hub_iri, hops)
        start = time.perf_counter()
        count = store.select(query).scalar().to_python()
        sparql_times[hops] = round(time.perf_counter() - start, 4)
        sparql_counts[hops] = count
        procedural_counts[hops] = count_paths(graph, hub, "follows", hops)
        assert sparql_counts[hops] == procedural_counts[hops], hops

    print(render_series(
        "EQ11a-e: path counts from the hub (SPARQL == procedural)",
        "hops",
        {
            "paths": sparql_counts,
            "sparql seconds": sparql_times,
        },
    ))
    print()

    # Things SPARQL 1.1 property paths cannot do (Section 5.1): return
    # the paths themselves, or bound-length arbitrary traversal.  The
    # procedural pipeline can.
    two_hop_names = (
        Traversal(graph)
        .vertex(hub)
        .out("follows")
        .out("follows")
        .dedup()
        .ids()
    )
    print(f"Distinct 2-hop follows neighbourhood of the hub: "
          f"{len(two_hop_names)} nodes (procedural dedup pipeline)")

    reachable = store.select(
        f"SELECT ?y WHERE {{ <{hub_iri}> r:follows+ ?y }}"
    )
    print(f"follows+ reachable set (SPARQL, set semantics): "
          f"{len(reachable)} nodes")


if __name__ == "__main__":
    main()
