"""Comparing the three PG-as-RDF encodings (the paper's Section 2.3).

Loads one graph under RF, NG and SP; prints the Table 2 cardinality
predictions vs. the measured RDF data; shows the per-model SPARQL text
for Q2 (edges + edge-KVs); verifies every model answers Q1-Q3
identically; and prints a Table 9-style storage report.

Run:  python examples/scheme_comparison.py
Env:  REPRO_SCALE=<egos>  (default 24)
"""

from repro import PropertyGraphRdfStore
from repro.bench.harness import scale_config
from repro.bench.report import render_table
from repro.core import measure_property_graph, predict_rdf
from repro.datasets.twitter import generate_twitter, selective_tag

MODELS = ("RF", "NG", "SP")


def main() -> None:
    graph = generate_twitter(scale_config())
    pg = measure_property_graph(graph)

    stores = {}
    for model in MODELS:
        store = PropertyGraphRdfStore(model=model)
        store.load(graph)
        stores[model] = store

    # --- Table 2: predicted vs measured cardinalities -----------------
    rows = []
    for model in MODELS:
        predicted = predict_rdf(pg, model)
        measured = stores[model].cardinalities()
        rows.append([
            model,
            predicted.object_property_quads, measured.object_property_quads,
            predicted.named_graphs, measured.named_graphs,
            predicted.distinct_object_properties,
            measured.distinct_object_properties,
        ])
    print(render_table(
        "Table 2: predicted vs measured RDF cardinalities",
        ["Model", "ObjProp(pred)", "ObjProp(meas)", "Graphs(pred)",
         "Graphs(meas)", "ObjProps(pred)", "ObjProps(meas)"],
        rows,
    ))
    print()

    # --- Q2 text per model ---------------------------------------------
    print("Q2 (vertex pairs + all edge KVs) per model:")
    for model in MODELS:
        print(f"  [{model}] {stores[model].queries.q2_edges_with_kvs()}")
    print()

    # --- Answer equivalence ----------------------------------------------
    tag = selective_tag(graph, target_fraction=0.02)
    checks = {
        "Q1 triangles": lambda q: q.q1_triangles(),
        "Q2 edge KVs": lambda q: q.q2_edges_with_kvs(),
        "Q3 node KVs": lambda q: q.eq4(tag),
    }
    for name, build in checks.items():
        counts = {
            model: len(stores[model].select(build(stores[model].queries)))
            for model in MODELS
        }
        status = "OK" if len(set(counts.values())) == 1 else "MISMATCH"
        print(f"{name}: {counts}  [{status}]")
    print()

    # --- Table 9-style storage report -------------------------------------
    reports = {
        model: stores[model].storage_report().as_megabytes()
        for model in ("NG", "SP")
    }
    columns = ["Model"] + sorted(
        {name for megabytes in reports.values() for name in megabytes},
        key=lambda name: (name == "Total", name),
    )
    rows = [
        [model] + [
            round(reports[model].get(name, 0.0), 2) for name in columns[1:]
        ]
        for model in ("NG", "SP")
    ]
    print(render_table(
        "Table 9 analogue: estimated physical storage (MB)", columns, rows
    ))


if __name__ == "__main__":
    main()
