"""The introduction's SQL-vs-SPARQL formulation comparison, executable.

Section 1 argues that querying graph data through SQL over a
``triples(sub, pred, obj)`` table is cumbersome compared to SPARQL:
"as the number of equi-joins and use of constants increase in a query,
the SQL query becomes increasingly complex".  This example builds the
paper's "find the company that John's uncle works for" query both ways,
runs both against the same data, and prints the complexity metrics.

Run:  python examples/sql_vs_sparql.py
"""

from repro.relational import ConjunctivePattern, TriplesTable, query_complexity
from repro.relational.complexity import sparql_text
from repro.rdf import IRI, Literal, Quad
from repro.sparql import SparqlEngine
from repro.store import SemanticNetwork

UNCLE_QUERY = [
    ConjunctivePattern("?x", "http://x/name", "John"),
    ConjunctivePattern("?x", "http://x/hasFather", "?f"),
    ConjunctivePattern("?f", "http://x/hasBrother", "?b"),
    ConjunctivePattern("?b", "http://x/worksFor", "?company"),
]

FACTS = [
    ("http://x/john", "http://x/name", "John"),
    ("http://x/john", "http://x/hasFather", "http://x/mark"),
    ("http://x/mark", "http://x/hasBrother", "http://x/tom"),
    ("http://x/tom", "http://x/worksFor", "http://x/acme"),
]


def main() -> None:
    # --- Relational side: the 4-way self-join --------------------------
    triples = TriplesTable()
    for sub, pred, obj in FACTS:
        triples.insert(sub, pred, obj)
    print("SQL against triples(sub, pred, obj):")
    print(triples.sql(UNCLE_QUERY, ["company"]))
    sql_rows = triples.query(UNCLE_QUERY, ["company"])
    print(f"-> {sql_rows}")
    print()

    # --- SPARQL side -----------------------------------------------------
    network = SemanticNetwork()
    network.create_model("m")
    quads = []
    for sub, pred, obj in FACTS:
        obj_term = IRI(obj) if obj.startswith("http") else Literal(obj)
        quads.append(Quad(IRI(sub), IRI(pred), obj_term))
    network.bulk_load("m", quads)
    engine = SparqlEngine(network, prefixes={"": "http://x/"},
                          default_model="m")
    query = """
        SELECT ?company WHERE {
          ?x :name "John" . ?x :hasFather ?f .
          ?f :hasBrother ?b . ?b :worksFor ?company }
    """
    print("SPARQL:")
    print(sparql_text(UNCLE_QUERY, ["company"]))
    result = engine.select(query)
    sparql_rows = [(row["company"].value,) for row in result]
    print(f"-> {sparql_rows}")
    assert sparql_rows == sql_rows
    print()

    # --- The complexity argument, quantified ------------------------------
    complexity = query_complexity(UNCLE_QUERY)
    print("Formulation complexity (the intro's argument):")
    print(f"  triple patterns:       {complexity.patterns}")
    print(f"  constants:             {complexity.constants}")
    print(f"  implicit equi-joins:   {complexity.equi_joins}")
    print(f"  SQL WHERE conjuncts:   {complexity.sql_predicates}")
    print(f"  SPARQL terms:          {complexity.sparql_terms}")
    print(f"  SQL column references: {complexity.sql_tokens_lower_bound}")


if __name__ == "__main__":
    main()
