"""Section 5.2: enriching transformed property graph data with linked
data and inference.

Reproduces both of the paper's enrichment examples:

1. **WordNet term expansion** — searching tags for "train" also returns
   nodes tagged #educate / #prepare, via senseLabel synonym expansion;
2. **Fact Book + user-defined rules** — OWL property-chain inference
   derives which countries neighbour the port "Tampa", and the paper's
   user-defined ``hasTagR`` rule links #Tampa-tagged nodes directly to
   those countries (Figure 10).

Run:  python examples/linked_data_enrichment.py
"""

from repro import PropertyGraph, PropertyGraphRdfStore
from repro.datasets import generate_factbook, generate_wordnet
from repro.datasets.factbook import FB
from repro.datasets.wordnet import WN
from repro.inference import owl_rl_closure
from repro.inference.owl import property_chain_rule
from repro.inference.rules import Rule, var
from repro.rdf import Quad


def build_tagged_graph() -> PropertyGraph:
    """A tiny Twitter-like graph with the tags the examples look for."""
    graph = PropertyGraph("tagged")
    tags = {
        1: ["#train", "#music"],
        2: ["#educate"],
        3: ["#prepare", "#Tampa"],
        4: ["#Tampa"],
        5: ["#travel"],
    }
    for node_id, node_tags in tags.items():
        vertex = graph.add_vertex(node_id)
        for tag in node_tags:
            vertex.add_property("hasTag", tag)
    graph.add_edge(1, "follows", 2)
    graph.add_edge(3, "follows", 4)
    return graph


def wordnet_example(store: PropertyGraphRdfStore) -> None:
    print("--- WordNet term expansion ('train') ---")
    # Load the WordNet-style dataset alongside the transformed graph.
    store.network.bulk_load("pg", generate_wordnet())
    store.engine = type(store.engine)(
        store.network,
        prefixes={**store.vocabulary.prefixes(), "wn": WN.base},
        default_model="pg",
    )
    query = """
        SELECT ?n ?label WHERE {
          ?w wn:senseLabel "train"@en-us .
          ?w wn:inSynset ?syn .
          ?w2 wn:inSynset ?syn .
          ?w2 rdfs:label ?label .
          ?n k:hasTag ?y
          FILTER (STR(?y) = CONCAT("#", STR(?label)))
        }
    """
    result = store.select(query)
    for row in result:
        print(f"  node {row['n'].value} matched via synonym "
              f"'{row['label'].lexical}'")
    direct = store.select('SELECT ?n WHERE { ?n k:hasTag "#train" }')
    print(f"  direct '#train' matches: {len(direct)}; "
          f"with expansion: {len(result)}")


def factbook_example(store: PropertyGraphRdfStore) -> None:
    print("--- Fact Book property chains + the hasTagR user rule ---")
    factbook = generate_factbook()
    vocab = store.vocabulary
    # Pre-compute entailment (the paper uses Oracle's native engine).
    has_port = property_chain_rule(
        "has-port", [FB.bndry, FB.ports], FB.hasPort
    )
    nbr_of_port = Rule(
        "nbr-of-port",
        body=((var("c"), FB.nbr, var("d")), (var("d"), FB.hasPort, var("p"))),
        head=((var("c"), FB.nbrOfPort, var("p")),),
    )
    # The user-defined hasTagR rule (Figure 10): a node tagged with a
    # port's name links directly to the port's neighbouring countries.
    has_tag_r = Rule(
        "hasTagR",
        body=(
            (var("n"), vocab.key_iri("hasTag"), var("t")),
            (var("p"), FB.tagName, var("t")),
            (var("c"), FB.nbrOfPort, var("p")),
        ),
        head=((var("n"), vocab.key_iri("hasTagR"), var("c")),),
    )
    triples = [q.triple() for q in store.quads() if q.graph is None]
    triples += [q.triple() for q in factbook]
    # Bridge facts: each port's tag spelling.
    from repro.rdf import Literal, Triple

    triples.append(Triple(FB.Tampa, FB.tagName, Literal("#Tampa")))
    closure = owl_rl_closure(
        triples, extra_rules=[has_port, nbr_of_port, has_tag_r]
    )
    inferred = [
        t for t in closure
        if t.predicate == vocab.key_iri("hasTagR")
    ]
    for triple in sorted(inferred, key=repr):
        print(f"  inferred: {triple.subject.value} hasTagR "
              f"{triple.object.value}")
    # Load the inferred edges back and filter nodes on them (the paper's
    # "the inferred edges can thus allow refining the filtering").
    store.network.bulk_load(
        "pg", [Quad(t.subject, t.predicate, t.object) for t in inferred]
    )
    result = store.select(
        "SELECT ?n WHERE { ?n k:hasTagR <http://factbook/Mexico> }"
    )
    print(f"  nodes now directly linked to Mexico: {len(result)}")


def main() -> None:
    graph = build_tagged_graph()
    store = PropertyGraphRdfStore(model="NG")
    store.load(graph)
    wordnet_example(store)
    print()
    factbook_example(store)


if __name__ == "__main__":
    main()
