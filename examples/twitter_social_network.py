"""The paper's Section 4 workload end to end, at laptop scale.

Generates a synthetic Twitter ego-network property graph (Section 4.2's
construction recipe), loads it under the NG model, prints the dataset
characteristics (Tables 6-8 analogues), and runs a sample of the
experiment queries EQ1-EQ12.

Run:  python examples/twitter_social_network.py
Env:  REPRO_SCALE=<egos>  (default 24; the paper used 973)
"""

from repro import PropertyGraphRdfStore
from repro.bench.harness import scale_config
from repro.bench.report import render_table
from repro.core import measure_property_graph
from repro.datasets.twitter import generate_twitter, hub_vertex, selective_tag


def main() -> None:
    graph = generate_twitter(scale_config())
    pg = measure_property_graph(graph)
    print(render_table(
        "Table 6 analogue: property graph characteristics",
        ["Nodes", "Edges", "Node KVs", "Edge KVs"],
        [[pg.vertices, pg.edges, pg.node_kvs, pg.edge_kvs]],
    ))
    print()

    store = PropertyGraphRdfStore(model="NG")
    store.load(graph)
    rdf = store.cardinalities()
    print(render_table(
        "Tables 7-8 analogue: transformed RDF characteristics (NG)",
        ["Quads", "Subjects", "Predicates", "Objects", "Named graphs"],
        [[
            rdf.total_quads, rdf.distinct_subjects, rdf.distinct_predicates,
            rdf.distinct_objects, rdf.named_graphs,
        ]],
    ))
    print()

    tag = selective_tag(graph, target_fraction=0.02)
    hub = store.vocabulary.vertex_iri(hub_vertex(graph)).value
    queries = store.queries.experiment_queries(tag, hub)
    print(f"Selective tag (the '#webseries' analogue): {tag}")
    print(f"Hub node (the 'n6160742' analogue): <{hub}>")
    print()
    for name in ("EQ1", "EQ2", "EQ4", "EQ5", "EQ8", "EQ11a", "EQ11b", "EQ12"):
        result = store.select(queries[name])
        if name.startswith("EQ11") or name == "EQ12":
            print(f"{name}: count = {result.scalar().to_python():,}")
        else:
            print(f"{name}: {len(result):,} results")
    print()
    print("Access plan for EQ2 (paper Table 5 style):")
    for line in store.explain(queries["EQ2"]):
        print(" ", line)


if __name__ == "__main__":
    main()
