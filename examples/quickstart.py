"""Quickstart: the paper's Figure 1 graph, stored as RDF three ways.

Builds the two-person sample property graph, loads it under each
PG-as-RDF model (RF, NG, SP), and runs the Section 2.1 query — "who
follows whom since when?" — with the model-appropriate SPARQL pattern.

Run:  python examples/quickstart.py
"""

from repro import PropertyGraph, PropertyGraphRdfStore
from repro.rdf import serialize_nquads


def build_figure1() -> PropertyGraph:
    graph = PropertyGraph("figure1")
    graph.add_vertex(1, {"name": "Amy", "age": 23})
    graph.add_vertex(2, {"name": "Mira", "age": 22})
    graph.add_edge(1, "follows", 2, {"since": 2007}, edge_id=3)
    graph.add_edge(1, "knows", 2, {"firstMetAt": "MIT"}, edge_id=4)
    return graph


# The Section 2.1 "who follows whom since when?" query per model.
WHO_FOLLOWS_WHOM = {
    "RF": """
        SELECT ?xname ?yname ?yr WHERE {
          ?r rdf:subject ?x .
          ?r rdf:predicate rel:follows .
          ?r rdf:object ?y .
          ?r key:since ?yr .
          ?x key:name ?xname .
          ?y key:name ?yname }
    """,
    "SP": """
        SELECT ?xname ?yname ?yr WHERE {
          ?x ?p ?y .
          ?p rdfs:subPropertyOf rel:follows .
          ?p key:since ?yr .
          ?x key:name ?xname .
          ?y key:name ?yname }
    """,
    "NG": """
        SELECT ?xname ?yname ?yr WHERE {
          GRAPH ?g {?x rel:follows ?y .
                    ?g key:since ?yr }
          ?x key:name ?xname .
          ?y key:name ?yname }
    """,
}


def main() -> None:
    graph = build_figure1()
    print(f"Property graph: {graph}")
    print()
    for model in ("RF", "NG", "SP"):
        store = PropertyGraphRdfStore(model=model)
        counts = store.load(graph)
        total = sum(counts.values())
        print(f"=== {model} model ({total} quads) ===")
        print(serialize_nquads(sorted(store.quads(), key=repr)))
        result = store.select(WHO_FOLLOWS_WHOM[model])
        for row in result:
            print(
                f"  {row['xname'].lexical} follows {row['yname'].lexical} "
                f"since {row['yr'].to_python()}"
            )
        # Round trip: the encoding is lossless.
        rebuilt = store.to_property_graph()
        assert rebuilt.edge(3).get_property("since") == 2007
        print()
    print("All three models answer identically, and round-trip losslessly.")


if __name__ == "__main__":
    main()
