"""Figure 7 / Experiment 3 — aggregate queries EQ9 (in-degree
distribution) and EQ10 (out-degree distribution).

Paper: about 9 seconds per query on 1.8M edges, with "no significant
performance difference (< 100ms) between the two approaches" because
both store the topology in the same quad/triple structures.  Shape
checks: identical distributions across models, and both agree with the
native degree computation.
"""

import pytest

from conftest import run_eq
from repro.propertygraph.traversal import degree_histogram

QUERIES = ["EQ9", "EQ10"]


@pytest.mark.parametrize("model", ["NG", "SP"])
@pytest.mark.parametrize("name", QUERIES)
def bench_figure7(benchmark, ctx, model, name):
    store = ctx.stores[model]
    query = store.queries.experiment_queries(ctx.tag, ctx.hub_iri)[name]
    result = run_eq(benchmark, store, query)
    benchmark.extra_info["results"] = len(result)
    assert len(result) > 0


def bench_figure7_distributions_match_native(benchmark, ctx):
    def check():
        in_native, out_native = degree_histogram(
            ctx.graph, ["knows", "follows"]
        )
        for model in ("NG", "SP"):
            store = ctx.stores[model]
            eq9 = store.select(store.queries.eq9())
            eq10 = store.select(store.queries.eq10())
            sparql_in = {
                row["inDeg"].to_python(): row["cnt"].to_python() for row in eq9
            }
            sparql_out = {
                row["outDeg"].to_python(): row["cnt"].to_python()
                for row in eq10
            }
            assert sparql_in == in_native, model
            assert sparql_out == out_native, model
        return True

    assert benchmark.pedantic(check, rounds=1, warmup_rounds=0)


def bench_figure7_ordering(benchmark, ctx):
    """EQ9/EQ10 order by descending degree (the paper's ORDER BY)."""

    def check():
        result = ctx.ng.select(ctx.ng.queries.eq9())
        degrees = [row["inDeg"].to_python() for row in result]
        assert degrees == sorted(degrees, reverse=True)
        return True

    assert benchmark.pedantic(check, rounds=1, warmup_rounds=0)
