"""Table 7 — transformed RDF dataset characteristics: triples.

Paper: follows 1,667,885; knows 128,200; refs 3,771,755; hasTag
792,990; NG total 6,360,830; SP total 9,953,000.  Shape: SP has exactly
2*E more triples than NG (the -e-sPO-p and -s-e-o anchors).
"""

from repro.bench.report import render_table
from repro.core import MODEL_NG, MODEL_SP, transformer_for
from repro.core.cardinality import table7_row


def bench_table7_transformation(benchmark, ctx):
    """Times the NG transformation; prints the Table 7 breakdown."""
    ng_quads = benchmark.pedantic(
        lambda: list(transformer_for(MODEL_NG, ctx.ng.vocabulary).transform(ctx.graph)),
        rounds=3,
        warmup_rounds=1,
    )
    sp_quads = list(
        transformer_for(MODEL_SP, ctx.sp.vocabulary).transform(ctx.graph)
    )
    vocab = ctx.ng.vocabulary
    ng = table7_row(ng_quads, vocab)
    sp = table7_row(sp_quads, vocab)
    print()
    keys = ["follows", "knows", "refs", "hasTag"]
    print(render_table(
        "Table 7: transformed RDF dataset characteristics (triples)",
        ["Model"] + keys + ["total"],
        [
            ["NG"] + [ng.get(k, 0) for k in keys] + [ng["total"]],
            ["SP"] + [sp.get(k, 0) for k in keys] + [sp["total"]],
        ],
    ))
    edges = ctx.graph.edge_count
    print(f"SP - NG = {sp['total'] - ng['total']:,} (2*E = {2 * edges:,})")
    assert sp["total"] - ng["total"] == 2 * edges
    # Core KV triples identical across models.
    for key in ("refs", "hasTag"):
        assert ng.get(key, 0) == sp.get(key, 0)
