#!/usr/bin/env python
"""Pipeline-refactor guard: layered execution must not cost latency.

The engine now runs every query through the layered pipeline (algebra
-> optimizer -> physical operators) while the interpreting Evaluator
remains in-tree as the semantic reference.  This guard enforces the
refactor's two performance claims:

1. **No regression** — per-query *median* latency of the pipeline
   stays within ``REPRO_PIPELINE_TOLERANCE`` (default 0.05 = 5%) of
   the reference evaluator on the paper's Figure 5 (EQ1-EQ4, node
   centric), Figure 8 (EQ11a-c, traversal) and Figure 9 (EQ12,
   triangles) workloads.  Faster is always fine; the gate is
   one-sided.
2. **Early termination pays** (``--limit-demo``) — a LIMIT-10 variant
   of the 3-hop EQ3 runs at least ``REPRO_LIMIT_SPEEDUP`` (default 2x)
   faster through the streaming pipeline than the same limited query
   through the materialize-everything evaluator, because the
   StreamingSlice stops pulling the operator tree after 10 rows.

Usage::

    python benchmarks/pipeline_guard.py             # regression gate
    python benchmarks/pipeline_guard.py --limit-demo

Knobs: ``REPRO_SCALE`` (ego networks, default 24),
``REPRO_PIPELINE_ROUNDS`` (timed rounds per query, default 9),
``REPRO_PIPELINE_TOLERANCE``, ``REPRO_LIMIT_SPEEDUP``.
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys
import time
from typing import Callable, Dict, List, Tuple

from repro.bench.harness import build_stores
from repro.sparql.eval import Evaluator

MODEL = "NG"
FIGURE_QUERIES: Tuple[Tuple[str, str], ...] = (
    ("figure5", "EQ1"),
    ("figure5", "EQ2"),
    ("figure5", "EQ3"),
    ("figure5", "EQ4"),
    ("figure8", "EQ11a"),
    ("figure8", "EQ11b"),
    ("figure8", "EQ11c"),
    ("figure9", "EQ12"),
)


def _rounds() -> int:
    return int(os.environ.get("REPRO_PIPELINE_ROUNDS", "9"))


def _tolerance() -> float:
    return float(os.environ.get("REPRO_PIPELINE_TOLERANCE", "0.05"))


def _required_speedup() -> float:
    return float(os.environ.get("REPRO_LIMIT_SPEEDUP", "2.0"))


def _interleaved_medians(
    first: Callable[[], object], second: Callable[[], object], rounds: int
) -> Tuple[float, float]:
    """Median seconds for two runners, timed in alternating rounds.

    Interleaving (rather than timing one block after the other) cancels
    slow drift — CPU frequency scaling, cache warming — that would
    otherwise bias a sub-millisecond comparison.
    """
    first()  # warm the store / caches
    second()
    first_samples: List[float] = []
    second_samples: List[float] = []
    for _ in range(rounds):
        start = time.perf_counter()
        first()
        first_samples.append(time.perf_counter() - start)
        start = time.perf_counter()
        second()
        second_samples.append(time.perf_counter() - start)
    return statistics.median(first_samples), statistics.median(second_samples)


def _runners(store, query: str):
    """(pipeline, legacy-evaluator) runners for one query text."""
    engine = store.engine
    ast = engine._parse_query(query)
    model_name = engine._model_name(None)
    store_model = engine.network.model(model_name)

    def pipeline():
        return engine.run_ast(ast, None, text=query)

    def legacy():
        evaluator = Evaluator(
            engine.network,
            store_model,
            union_default_graph=engine._union_default,
            filter_pushdown=engine._filter_pushdown,
        )
        return evaluator.select(ast)

    return pipeline, legacy


def check_regressions() -> int:
    ctx = build_stores()
    store = ctx.stores[MODEL]
    suite = store.queries.experiment_queries(ctx.tag, ctx.hub_iri)
    rounds = _rounds()
    tolerance = _tolerance()
    failures: List[str] = []
    print(f"pipeline guard: {len(FIGURE_QUERIES)} queries, "
          f"median of {rounds} rounds, tolerance {tolerance:.0%}")
    for figure, name in FIGURE_QUERIES:
        pipeline, legacy = _runners(store, suite[name])
        legacy_s, pipeline_s = _interleaved_medians(legacy, pipeline, rounds)
        ratio = pipeline_s / legacy_s if legacy_s else 1.0
        if ratio > 1.0 + tolerance:
            # Confirm before failing: a shared/throttled CPU can burst
            # mid-measurement.  Re-measure with doubled rounds; only a
            # reproduced regression counts.
            legacy_s, pipeline_s = _interleaved_medians(
                legacy, pipeline, rounds * 2
            )
            ratio = pipeline_s / legacy_s if legacy_s else 1.0
        verdict = "ok" if ratio <= 1.0 + tolerance else "REGRESSED"
        print(
            f"  {figure:8s} {name:6s} legacy={legacy_s * 1e3:8.3f}ms "
            f"pipeline={pipeline_s * 1e3:8.3f}ms ratio={ratio:5.2f} "
            f"{verdict}"
        )
        if ratio > 1.0 + tolerance:
            failures.append(f"{name} ({ratio:.2f}x)")
    if failures:
        print(f"FAIL: pipeline median regressed beyond {tolerance:.0%} "
              f"on: {', '.join(failures)}")
        return 1
    print("PASS: pipeline medians within tolerance on every figure query")
    return 0


def check_limit_demo() -> int:
    ctx = build_stores()
    store = ctx.stores[MODEL]
    suite = store.queries.experiment_queries(ctx.tag, ctx.hub_iri)
    limited = suite["EQ3"] + " LIMIT 10"
    rounds = _rounds()
    required = _required_speedup()
    pipeline, legacy = _runners(store, limited)
    legacy_s, pipeline_s = _interleaved_medians(legacy, pipeline, rounds)
    speedup = legacy_s / pipeline_s if pipeline_s else float("inf")
    print(
        f"limit demo (EQ3 LIMIT 10): evaluator={legacy_s * 1e3:.3f}ms "
        f"pipeline={pipeline_s * 1e3:.3f}ms speedup={speedup:.1f}x "
        f"(required {required:.1f}x)"
    )
    if speedup < required:
        print("FAIL: streaming early termination did not deliver the "
              "required speedup")
        return 1
    print("PASS: LIMIT query terminates early through the pipeline")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--limit-demo",
        action="store_true",
        help="check the LIMIT-10 early-termination speedup instead of "
        "the regression gate",
    )
    args = parser.parse_args(argv)
    if args.limit_demo:
        return check_limit_demo()
    return check_regressions()


if __name__ == "__main__":
    sys.exit(main())
