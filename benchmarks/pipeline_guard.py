#!/usr/bin/env python
"""Pipeline-refactor guard: layered execution must not cost latency.

The engine now runs every query through the layered pipeline (algebra
-> optimizer -> physical operators) while the interpreting Evaluator
remains in-tree as the semantic reference.  This guard enforces the
refactor's two performance claims:

1. **No regression** — per-query *median* latency of the pipeline
   stays within ``REPRO_PIPELINE_TOLERANCE`` (default 0.05 = 5%) of
   the reference evaluator on the paper's Figure 5 (EQ1-EQ4, node
   centric), Figure 8 (EQ11a-c, traversal) and Figure 9 (EQ12,
   triangles) workloads.  Faster is always fine; the gate is
   one-sided.
2. **Early termination pays** (``--limit-demo``) — a LIMIT-10 variant
   of the 3-hop EQ3 runs at least ``REPRO_LIMIT_SPEEDUP`` (default 2x)
   faster through the streaming pipeline than the same limited query
   through the materialize-everything evaluator, because the
   StreamingSlice stops pulling the operator tree after 10 rows.
3. **Vectorization pays** (``--scan-speedup``) — the scan-heavy
   Figure 5 queries (EQ1, a range scan; EQ4, a scan plus a
   vectorizable ``isLiteral`` filter) run at least
   ``REPRO_SCAN_SPEEDUP`` (default 3x, median across the set) faster
   through the batched columnar pipeline than the row-at-a-time
   reference evaluator.  This gate sizes the dataset up
   (``REPRO_SCALE`` default 64 here) so scan cost, not fixed per-query
   overhead, dominates what is being compared.
4. **Pages stay compact** (``--table9``) — the measured packed bytes
   per indexed quad of the columnar index pages stays under
   ``REPRO_PAGE_BYTES_PER_QUAD`` (default 24; raw keys are 32) for
   both NG and SP stores, and the figures are merged into
   ``BENCH_results.json`` under ``"table9_pages"``.
5. **The PGQL front-end is free** (``--pgql-parity``) — compiling the
   Cypher-subset MATCH language onto the shared algebra must not cost
   execution latency: per-query medians of the PGQL EQ4/EQ8
   formulations stay within ``REPRO_PGQL_PARITY`` (default 1.2x) of
   the hand-written SPARQL texts on the NG store.  Both sides hit the
   same plan cache after warmup, so this measures the executor, not
   the parser.  Figures are merged under ``"pgql_parity"``.

Usage::

    python benchmarks/pipeline_guard.py             # regression gate
    python benchmarks/pipeline_guard.py --limit-demo
    python benchmarks/pipeline_guard.py --scan-speedup
    python benchmarks/pipeline_guard.py --table9
    python benchmarks/pipeline_guard.py --pgql-parity

Knobs: ``REPRO_SCALE`` (ego networks, default 24),
``REPRO_PIPELINE_ROUNDS`` (timed rounds per query, default 9),
``REPRO_PIPELINE_TOLERANCE``, ``REPRO_LIMIT_SPEEDUP``,
``REPRO_SCAN_SPEEDUP``, ``REPRO_PAGE_BYTES_PER_QUAD``,
``REPRO_BENCH_RESULTS`` (results path; empty string disables).
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from typing import Callable, Dict, List, Tuple

from repro.bench.harness import build_stores
from repro.sparql.eval import Evaluator

MODEL = "NG"
FIGURE_QUERIES: Tuple[Tuple[str, str], ...] = (
    ("figure5", "EQ1"),
    ("figure5", "EQ2"),
    ("figure5", "EQ3"),
    ("figure5", "EQ4"),
    ("figure8", "EQ11a"),
    ("figure8", "EQ11b"),
    ("figure8", "EQ11c"),
    ("figure9", "EQ12"),
)


def _rounds() -> int:
    return int(os.environ.get("REPRO_PIPELINE_ROUNDS", "9"))


def _tolerance() -> float:
    return float(os.environ.get("REPRO_PIPELINE_TOLERANCE", "0.05"))


def _required_speedup() -> float:
    return float(os.environ.get("REPRO_LIMIT_SPEEDUP", "2.0"))


def _interleaved_medians(
    first: Callable[[], object], second: Callable[[], object], rounds: int
) -> Tuple[float, float]:
    """Median seconds for two runners, timed in alternating rounds.

    Interleaving (rather than timing one block after the other) cancels
    slow drift — CPU frequency scaling, cache warming — that would
    otherwise bias a sub-millisecond comparison.
    """
    first()  # warm the store / caches
    second()
    first_samples: List[float] = []
    second_samples: List[float] = []
    for _ in range(rounds):
        start = time.perf_counter()
        first()
        first_samples.append(time.perf_counter() - start)
        start = time.perf_counter()
        second()
        second_samples.append(time.perf_counter() - start)
    return statistics.median(first_samples), statistics.median(second_samples)


def _runners(store, query: str):
    """(pipeline, legacy-evaluator) runners for one query text."""
    engine = store.engine
    ast = engine._parse_query(query)
    model_name = engine._model_name(None)
    store_model = engine.network.model(model_name)

    def pipeline():
        return engine.run_ast(ast, None, text=query)

    def legacy():
        evaluator = Evaluator(
            engine.network,
            store_model,
            union_default_graph=engine._union_default,
            filter_pushdown=engine._filter_pushdown,
        )
        return evaluator.select(ast)

    return pipeline, legacy


def check_regressions() -> int:
    ctx = build_stores()
    store = ctx.stores[MODEL]
    suite = store.queries.experiment_queries(ctx.tag, ctx.hub_iri)
    rounds = _rounds()
    tolerance = _tolerance()
    failures: List[str] = []
    print(f"pipeline guard: {len(FIGURE_QUERIES)} queries, "
          f"median of {rounds} rounds, tolerance {tolerance:.0%}")
    for figure, name in FIGURE_QUERIES:
        pipeline, legacy = _runners(store, suite[name])
        legacy_s, pipeline_s = _interleaved_medians(legacy, pipeline, rounds)
        ratio = pipeline_s / legacy_s if legacy_s else 1.0
        if ratio > 1.0 + tolerance:
            # Confirm before failing: a shared/throttled CPU can burst
            # mid-measurement.  Re-measure with doubled rounds; only a
            # reproduced regression counts.
            legacy_s, pipeline_s = _interleaved_medians(
                legacy, pipeline, rounds * 2
            )
            ratio = pipeline_s / legacy_s if legacy_s else 1.0
        verdict = "ok" if ratio <= 1.0 + tolerance else "REGRESSED"
        print(
            f"  {figure:8s} {name:6s} legacy={legacy_s * 1e3:8.3f}ms "
            f"pipeline={pipeline_s * 1e3:8.3f}ms ratio={ratio:5.2f} "
            f"{verdict}"
        )
        if ratio > 1.0 + tolerance:
            failures.append(f"{name} ({ratio:.2f}x)")
    if failures:
        print(f"FAIL: pipeline median regressed beyond {tolerance:.0%} "
              f"on: {', '.join(failures)}")
        return 1
    print("PASS: pipeline medians within tolerance on every figure query")
    return 0


#: The scan-heavy Figure 5 queries: EQ1 is one index range scan, EQ4
#: is the per-node KV scan behind a vectorizable isLiteral filter.
#: EQ2/EQ3 are join-bound, so they belong to the regression gate above,
#: not the vectorization gate.
SCAN_QUERIES: Tuple[str, ...] = ("EQ1", "EQ4")


def check_scan_speedup() -> int:
    # Scan-heavy means scans must dominate the measurement: grow the
    # default dataset so fixed per-query overhead (parse cache lookup,
    # plan setup) stops mattering.
    os.environ.setdefault("REPRO_SCALE", "64")
    ctx = build_stores()
    store = ctx.stores[MODEL]
    suite = store.queries.experiment_queries(ctx.tag, ctx.hub_iri)
    rounds = _rounds()
    required = float(os.environ.get("REPRO_SCAN_SPEEDUP", "3.0"))
    print(f"scan-speedup gate: {', '.join(SCAN_QUERIES)} at scale "
          f"{os.environ['REPRO_SCALE']}, median of {rounds} rounds, "
          f"required median {required:.1f}x")
    speedups: List[float] = []
    for name in SCAN_QUERIES:
        pipeline, legacy = _runners(store, suite[name])
        legacy_s, pipeline_s = _interleaved_medians(legacy, pipeline, rounds)
        speedup = legacy_s / pipeline_s if pipeline_s else float("inf")
        if speedup < required:
            # One slow sample can be scheduler noise; reproduce with
            # doubled rounds before letting it drag the median down.
            legacy_s, pipeline_s = _interleaved_medians(
                legacy, pipeline, rounds * 2
            )
            speedup = legacy_s / pipeline_s if pipeline_s else float("inf")
        speedups.append(speedup)
        print(f"  {name:6s} evaluator={legacy_s * 1e3:8.3f}ms "
              f"pipeline={pipeline_s * 1e3:8.3f}ms speedup={speedup:5.2f}x")
    median_speedup = statistics.median(speedups)
    _merge_results("scan_speedup", {
        "queries": list(SCAN_QUERIES),
        "speedups": [round(s, 3) for s in speedups],
        "median_speedup": round(median_speedup, 3),
        "required": required,
        "scale": int(os.environ["REPRO_SCALE"]),
    })
    if median_speedup < required:
        print(f"FAIL: median scan speedup {median_speedup:.2f}x is below "
              f"the required {required:.1f}x")
        return 1
    print(f"PASS: batched pipeline is {median_speedup:.2f}x the "
          "row-at-a-time evaluator on scan-heavy queries (median)")
    return 0


def check_table9_pages() -> int:
    ctx = build_stores()
    limit = float(os.environ.get("REPRO_PAGE_BYTES_PER_QUAD", "24.0"))
    entry: Dict[str, Dict[str, float]] = {}
    failures: List[str] = []
    print(f"table9 page-compactness gate: packed bytes/quad/index "
          f"must stay under {limit:.1f} (raw keys: 32)")
    for model in ("NG", "SP"):
        report = ctx.stores[model].storage_report()
        per_quad = report.page_bytes_per_quad
        entry[model] = {
            "packed_bytes": report.page_total,
            "quads": report.quads,
            "indexes": len(report.page_bytes),
            "bytes_per_quad_per_index": round(per_quad, 3),
        }
        verdict = "ok" if 0 < per_quad < limit else "TOO LARGE"
        print(f"  {model}: packed={report.page_total / 2**20:7.3f}MB "
              f"quads={report.quads} bytes/quad/index={per_quad:6.2f} "
              f"{verdict}")
        if not 0 < per_quad < limit:
            failures.append(f"{model} ({per_quad:.2f})")
    _merge_results("table9_pages", entry)
    if failures:
        print(f"FAIL: packed pages exceed {limit:.1f} bytes/quad on: "
              f"{', '.join(failures)}")
        return 1
    print("PASS: columnar pages beat raw key storage on every store")
    return 0


def _merge_results(key: str, entry: Dict) -> None:
    """Merge one measurement into BENCH_results.json (never clobber)."""
    target = os.environ.get("REPRO_BENCH_RESULTS")
    if target == "":
        return
    if target is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        target = os.path.join(root, "BENCH_results.json")
    document: Dict = {}
    if os.path.exists(target):
        try:
            with open(target, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            document = {}
    document[key] = entry
    document.setdefault(
        "generated_at",
        time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    )
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"{key} results merged into {target}")


#: KV-heavy queries where the compiled shape differs most from the
#: hand-written text (EQ4 node KVs, EQ8 edge KVs behind GRAPH ?e).
PGQL_PARITY_QUERIES: Tuple[str, ...] = ("EQ4", "EQ8")


def check_pgql_parity() -> int:
    from repro.pgql import pgql_experiment_queries

    ctx = build_stores()
    store = ctx.stores[MODEL]
    engine = store.engine
    sparql_suite = store.queries.experiment_queries(ctx.tag, ctx.hub_iri)
    pgql_suite = pgql_experiment_queries(ctx.tag, ctx.hub_id)
    rounds = _rounds()
    allowed = float(os.environ.get("REPRO_PGQL_PARITY", "1.2"))
    print(f"pgql parity gate: {', '.join(PGQL_PARITY_QUERIES)}, median of "
          f"{rounds} rounds, pgql/sparql must stay under {allowed:.2f}x")
    entry: Dict[str, Dict[str, float]] = {}
    failures: List[str] = []
    for name in PGQL_PARITY_QUERIES:
        sparql_text = sparql_suite[name]
        pgql_text = pgql_suite[name]

        def run_sparql(text=sparql_text):
            return engine.select(text)

        def run_pgql(text=pgql_text):
            return engine.pgql(text)

        rows = len(run_sparql().rows)
        if len(run_pgql().rows) != rows:
            print(f"  {name:6s} PGQL/SPARQL row counts differ — parity "
                  "timing would be meaningless")
            failures.append(f"{name} (rows differ)")
            continue
        sparql_s, pgql_s = _interleaved_medians(run_sparql, run_pgql, rounds)
        ratio = pgql_s / sparql_s if sparql_s else 1.0
        if ratio > allowed:
            # Reproduce before failing: interleaving cancels drift but
            # not a one-off scheduler burst.
            sparql_s, pgql_s = _interleaved_medians(
                run_sparql, run_pgql, rounds * 2
            )
            ratio = pgql_s / sparql_s if sparql_s else 1.0
        verdict = "ok" if ratio <= allowed else "REGRESSED"
        print(f"  {name:6s} sparql={sparql_s * 1e3:8.3f}ms "
              f"pgql={pgql_s * 1e3:8.3f}ms ratio={ratio:5.2f} {verdict}")
        entry[name] = {
            "sparql_ms": round(sparql_s * 1e3, 4),
            "pgql_ms": round(pgql_s * 1e3, 4),
            "ratio": round(ratio, 3),
            "rows": rows,
        }
        if ratio > allowed:
            failures.append(f"{name} ({ratio:.2f}x)")
    entry["allowed"] = allowed
    _merge_results("pgql_parity", entry)
    if failures:
        print(f"FAIL: compiled PGQL exceeded {allowed:.2f}x SPARQL latency "
              f"on: {', '.join(failures)}")
        return 1
    print("PASS: the PGQL front-end matches hand-written SPARQL latency")
    return 0


def check_limit_demo() -> int:
    ctx = build_stores()
    store = ctx.stores[MODEL]
    suite = store.queries.experiment_queries(ctx.tag, ctx.hub_iri)
    limited = suite["EQ3"] + " LIMIT 10"
    rounds = _rounds()
    required = _required_speedup()
    pipeline, legacy = _runners(store, limited)
    legacy_s, pipeline_s = _interleaved_medians(legacy, pipeline, rounds)
    speedup = legacy_s / pipeline_s if pipeline_s else float("inf")
    print(
        f"limit demo (EQ3 LIMIT 10): evaluator={legacy_s * 1e3:.3f}ms "
        f"pipeline={pipeline_s * 1e3:.3f}ms speedup={speedup:.1f}x "
        f"(required {required:.1f}x)"
    )
    if speedup < required:
        print("FAIL: streaming early termination did not deliver the "
              "required speedup")
        return 1
    print("PASS: LIMIT query terminates early through the pipeline")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--limit-demo",
        action="store_true",
        help="check the LIMIT-10 early-termination speedup instead of "
        "the regression gate",
    )
    parser.add_argument(
        "--scan-speedup",
        action="store_true",
        help="check the batched-pipeline speedup on scan-heavy "
        "figure-5 queries vs the row-at-a-time evaluator",
    )
    parser.add_argument(
        "--table9",
        action="store_true",
        help="check packed page bytes-per-quad and record the Table 9 "
        "page figures in BENCH_results.json",
    )
    parser.add_argument(
        "--pgql-parity",
        action="store_true",
        help="check compiled-PGQL vs hand-written-SPARQL latency parity "
        "on the KV-heavy EQ4/EQ8 queries",
    )
    args = parser.parse_args(argv)
    if args.limit_demo:
        return check_limit_demo()
    if args.scan_speedup:
        return check_scan_speedup()
    if args.table9:
        return check_table9_pages()
    if args.pgql_parity:
        return check_pgql_parity()
    return check_regressions()


if __name__ == "__main__":
    sys.exit(main())
