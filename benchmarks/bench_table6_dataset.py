"""Table 6 — Twitter dataset characteristics.

Paper (973 egos): 76,245 nodes; 1,796,085 edges; 1,218,763 node KVs;
3,345,982 edge KVs.  Shape to reproduce at any scale: edges >> nodes
(dense graph), edge KVs > node KVs, follows >> knows.
"""

from repro.bench.harness import scale_config
from repro.bench.report import render_table
from repro.core import measure_property_graph
from repro.datasets.twitter import generate_twitter


def bench_table6_generation(benchmark):
    """Times dataset generation; prints the Table 6 row."""
    graph = benchmark.pedantic(
        lambda: generate_twitter(scale_config()), rounds=3, warmup_rounds=1
    )
    pg = measure_property_graph(graph)
    print()
    print(render_table(
        "Table 6: Twitter dataset characteristics",
        ["Nodes", "Edges", "Node KVs", "Edge KVs"],
        [[pg.vertices, pg.edges, pg.node_kvs, pg.edge_kvs]],
    ))
    follows = sum(1 for e in graph.edges() if e.label == "follows")
    knows = pg.edges - follows
    print(f"edges by label: follows={follows:,} knows={knows:,}")
    # Shape assertions (the paper's qualitative characteristics).
    assert pg.edges > pg.vertices, "graph must be densely connected"
    assert pg.edge_kvs > pg.node_kvs, "edge KVs must outnumber node KVs"
    assert follows > knows, "follows must dominate knows"


def bench_table6_relational_export(benchmark, ctx):
    """Times the Figure 3 relational flattening of the same graph."""
    from repro.propertygraph import to_relational

    relational = benchmark.pedantic(
        lambda: to_relational(ctx.graph), rounds=3, warmup_rounds=1
    )
    assert relational.edge_count == ctx.graph.edge_count
    assert len(relational.obj_kvs) == (
        ctx.graph.vertex_kv_count() + ctx.graph.edge_kv_count()
    )
