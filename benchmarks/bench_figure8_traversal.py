"""Figure 8 / Experiment 4 — graph traversal queries EQ11a-e.

Paper: path counts from one node explode with hop count (21 / 900 /
52,540 / 3,573,916 / 257,861,728) and execution time "rises steeply" on
a log scale; NG is slightly faster than SP because its triples table is
smaller (faster full scans feeding the hash joins).  Shape checks:
super-linear growth of both count and time, identical counts across
models, and agreement with the procedural (Gremlin-style) traversal.
"""

import pytest

from conftest import run_eq
from repro.bench.report import render_series
from repro.propertygraph.traversal import count_paths

HOPS = {"EQ11a": 1, "EQ11b": 2, "EQ11c": 3, "EQ11d": 4, "EQ11e": 5}
_COUNTS = {}


@pytest.mark.parametrize("model", ["NG", "SP"])
@pytest.mark.parametrize("name", sorted(HOPS))
def bench_figure8(benchmark, ctx, model, name):
    store = ctx.stores[model]
    query = store.queries.eq11(ctx.hub_iri, HOPS[name])
    result = run_eq(benchmark, store, query)
    count = result.scalar().to_python()
    _COUNTS[(name, model)] = count
    benchmark.extra_info["paths"] = count


def bench_figure8_shape(benchmark, ctx):
    def check():
        counts = {}
        for name, hops in sorted(HOPS.items()):
            sparql = {
                model: ctx.stores[model]
                .select(ctx.stores[model].queries.eq11(ctx.hub_iri, hops))
                .scalar()
                .to_python()
                for model in ("NG", "SP")
            }
            assert sparql["NG"] == sparql["SP"], name
            native = count_paths(ctx.graph, ctx.hub_id, "follows", hops)
            assert sparql["NG"] == native, name
            counts[hops] = sparql["NG"]
        return counts

    counts = benchmark.pedantic(check, rounds=1, warmup_rounds=0)
    print()
    print(render_series(
        "Figure 8: path counts from the hub node", "hops",
        {"paths": counts},
    ))
    # Exponential-ish growth: each extra hop multiplies the path count.
    for hops in range(2, 6):
        if counts[hops - 1] > 0:
            assert counts[hops] > counts[hops - 1], hops
    assert counts[5] > 50 * counts[1]
