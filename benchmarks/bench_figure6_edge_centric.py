"""Figure 6 / Experiment 2 — edge-centric queries EQ5-EQ8 (a=NG, b=SP).

Paper: "the NG approach performs better for queries involving multiple
edge key/value pair accesses ... the performance improvement is most
obvious in query EQ7a/b due to a significant difference in number of
joins" (NG reads two quads per edge-KV access; SP needs three triples).
Shape checks: identical results per model pair, and NG beats SP on the
3-hop edge-KV query EQ7.
"""

import time

import pytest

from conftest import run_eq

QUERIES = ["EQ5", "EQ6", "EQ7", "EQ8"]


@pytest.mark.parametrize("model", ["NG", "SP"])
@pytest.mark.parametrize("name", QUERIES)
def bench_figure6(benchmark, ctx, model, name):
    store = ctx.stores[model]
    query = store.queries.experiment_queries(ctx.tag, ctx.hub_iri)[name]
    result = run_eq(benchmark, store, query)
    benchmark.extra_info["results"] = len(result)
    assert len(result) > 0, f"{name} must return results (tag {ctx.tag})"


def bench_figure6_ng_wins_eq7(benchmark, ctx):
    """The paper's headline: NG beats SP where edge KVs are accessed,
    most clearly on EQ7 (three edge-KV accesses -> 3 extra joins in SP)."""

    def timed(store, name):
        query = store.queries.experiment_queries(ctx.tag, ctx.hub_iri)[name]
        store.select(query)  # warm-up
        start = time.perf_counter()
        result = store.select(query)
        return time.perf_counter() - start, len(result)

    def check():
        ng_time, ng_count = timed(ctx.ng, "EQ7")
        sp_time, sp_count = timed(ctx.sp, "EQ7")
        assert ng_count == sp_count
        print(f"\nEQ7: NG {ng_time * 1000:.2f} ms vs SP {sp_time * 1000:.2f} ms "
              f"({sp_time / max(ng_time, 1e-9):.1f}x)")
        return ng_time, sp_time

    ng_time, sp_time = benchmark.pedantic(check, rounds=1, warmup_rounds=0)
    assert ng_time < sp_time, "NG must win the multi-edge-KV query (EQ7)"


def bench_figure6_equivalence(benchmark, ctx):
    def check():
        for name in QUERIES:
            counts = set()
            for model in ("NG", "SP"):
                store = ctx.stores[model]
                query = store.queries.experiment_queries(
                    ctx.tag, ctx.hub_iri
                )[name]
                counts.add(len(store.select(query)))
            assert len(counts) == 1, (name, counts)
        return True

    assert benchmark.pedantic(check, rounds=1, warmup_rounds=0)
