#!/usr/bin/env python
"""Tracing-overhead guard: the disabled tracer must stay (almost) free.

The span tracer promises a strict no-op when disabled — ``span()``
hands back a shared singleton and the hot paths take the untraced
branch.  This script makes that promise enforceable: it times the
Figure 5 node-centric queries (EQ1-EQ4, NG model) with tracing
disabled and enabled, and compares the disabled-path best-of-N times against
a recorded baseline.

Usage::

    python benchmarks/overhead_guard.py --record baseline.json
    python benchmarks/overhead_guard.py --check  baseline.json

``--check`` exits non-zero when the geometric mean of the per-query
disabled-path best times regressed more than
``REPRO_OVERHEAD_TOLERANCE`` (default 0.02 = 2%) over the baseline
(per-query numbers are printed; the mean is the gate because
independent per-query jitter cancels in it).  The enabled-path numbers are reported for context
(tracing is *expected* to cost something when on).  CI records and
checks within one job, so the two runs see identical hardware.

Knobs: ``REPRO_SCALE`` (dataset size, default 24),
``REPRO_OVERHEAD_ROUNDS`` (timed rounds per query, default 30),
``REPRO_OVERHEAD_TOLERANCE`` (allowed fractional regression).
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from typing import Dict, Tuple

from repro.bench.harness import build_stores
from repro.obs import trace as _trace

QUERIES = ("EQ1", "EQ2", "EQ3", "EQ4")
MODEL = "NG"


def _rounds() -> int:
    return int(os.environ.get("REPRO_OVERHEAD_ROUNDS", "30"))


def _tolerance() -> float:
    return float(os.environ.get("REPRO_OVERHEAD_TOLERANCE", "0.02"))


def _measure(store, query: str, rounds: int) -> float:
    """Best-of-``rounds`` wall time of warm runs.

    The *minimum* is the right statistic for a regression gate at this
    scale: the best case is reproducible (it is the code path with no
    scheduler noise on top), while medians of sub-millisecond runs
    jitter far beyond the 2% tolerance between processes.
    """
    store.select(query)  # warm the buffer-cache analogue
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        store.select(query)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def measure_all() -> Tuple[Dict[str, float], Dict[str, float]]:
    """Disabled- and enabled-path best times for every Figure 5 query."""
    rounds = _rounds()
    ctx = build_stores()
    store = ctx.stores[MODEL]
    queries = store.queries.experiment_queries(ctx.tag, ctx.hub_iri)
    disabled: Dict[str, float] = {}
    enabled: Dict[str, float] = {}
    if _trace.is_enabled():
        raise SystemExit("tracing already enabled; cannot measure baseline")
    for name in QUERIES:
        disabled[name] = _measure(store, queries[name], rounds)
    _trace.enable()
    try:
        for name in QUERIES:
            enabled[name] = _measure(store, queries[name], rounds)
    finally:
        _trace.disable()
    return disabled, enabled


def _report(disabled: Dict[str, float], enabled: Dict[str, float]) -> None:
    print(f"{'query':<6} {'disabled':>12} {'enabled':>12} {'overhead':>9}")
    for name in QUERIES:
        off, on = disabled[name], enabled[name]
        ratio = (on / off - 1.0) if off > 0 else float("inf")
        print(f"{name:<6} {off * 1e3:>10.3f}ms {on * 1e3:>10.3f}ms "
              f"{ratio:>+8.1%}")


def cmd_record(path: str) -> int:
    disabled, enabled = measure_all()
    document = {
        "scale": int(os.environ.get("REPRO_SCALE", "24")),
        "rounds": _rounds(),
        "model": MODEL,
        "disabled_best_seconds": disabled,
        "enabled_best_seconds": enabled,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    _report(disabled, enabled)
    print(f"baseline recorded to {path}")
    return 0


def cmd_check(path: str) -> int:
    with open(path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    base = baseline["disabled_best_seconds"]
    tolerance = _tolerance()
    disabled, enabled = measure_all()
    _report(disabled, enabled)
    # Gate on the geometric mean across the queries: per-query best-of-N
    # still jitters a few percent between processes, but that noise is
    # independent per query and largely cancels in the mean, while a
    # real disabled-path regression (a hot-path branch got slower)
    # shifts every query the same way.
    ratios = []
    for name in QUERIES:
        if name not in base or not base[name]:
            continue
        ratio = disabled[name] / base[name]
        ratios.append(ratio)
        print(f"{name}: disabled-path vs baseline {ratio - 1.0:+.1%}")
    if not ratios:
        print("no comparable baseline entries", file=sys.stderr)
        return 2
    geomean = statistics.geometric_mean(ratios)
    regression = geomean - 1.0
    print(f"geometric-mean disabled-path regression: {regression:+.2%} "
          f"(tolerance {tolerance:.1%})")
    if regression > tolerance:
        print("overhead guard FAILED: disabled path regressed beyond "
              "tolerance", file=sys.stderr)
        return 1
    print("overhead guard passed: disabled-path timings within tolerance")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--record", metavar="PATH",
                       help="measure and write a baseline JSON")
    group.add_argument("--check", metavar="PATH",
                       help="measure and compare against a baseline JSON")
    args = parser.parse_args(argv)
    if args.record:
        return cmd_record(args.record)
    return cmd_check(args.check)


if __name__ == "__main__":
    raise SystemExit(main())
