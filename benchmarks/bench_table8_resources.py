"""Table 8 — transformed RDF dataset characteristics: resources.

Paper: NG subjects 1,019,549 (70,097 vertices + 949,452 edge graphs
with KVs); SP subjects 1,866,182 (70,097 + 1,796,085 edges); NG has 4
predicates, SP has 1,796,090 (4 + 1 + E); NG named graphs = E, SP 0;
SP objects = NG objects + 2 (the labels in object position).
"""

from repro.bench.harness import EXPERIMENT_MODELS
from repro.bench.report import render_table
from repro.core import measure_rdf


def bench_table8_resource_counts(benchmark, ctx):
    measured = {}

    def measure_all():
        for model in EXPERIMENT_MODELS:
            measured[model] = measure_rdf(ctx.stores[model].quads())
        return measured

    benchmark.pedantic(measure_all, rounds=3, warmup_rounds=1)
    ng, sp = measured["NG"], measured["SP"]
    print()
    print(render_table(
        "Table 8: transformed RDF dataset characteristics (resources)",
        ["Model", "Subjects", "Predicates", "Objects", "Named graphs"],
        [
            ["NG", ng.distinct_subjects, ng.distinct_predicates,
             ng.distinct_objects, ng.named_graphs],
            ["SP", sp.distinct_subjects, sp.distinct_predicates,
             sp.distinct_objects, sp.named_graphs],
        ],
    ))
    graph = ctx.graph
    edges = graph.edge_count
    edges_with_kvs = graph.edges_with_kv_count()
    labels = len(graph.labels())
    keys = len(set(graph.edge_keys()) | set(graph.vertex_keys()))
    # NG: subjects = vertices-with-triples + edge graphs having KVs.
    assert ng.named_graphs == edges
    assert sp.named_graphs == 0
    assert sp.distinct_subjects - ng.distinct_subjects == (
        edges - edges_with_kvs
    )
    # NG predicates: labels + keys; SP adds one per edge + subPropertyOf.
    assert ng.distinct_predicates == labels + keys
    assert sp.distinct_predicates == labels + keys + edges + 1
    # SP objects add the labels appearing in -e-sPO-p object position.
    assert sp.distinct_objects == ng.distinct_objects + labels
