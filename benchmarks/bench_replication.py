#!/usr/bin/env python
"""Replication guard: catch-up throughput and steady-state lag.

WAL shipping is only useful if a follower can (a) *catch up* faster
than the leader writes and (b) stay caught up under a sustained
ingest.  This script makes both enforceable:

* **catch-up**: the leader ingests N commits while no follower is
  attached; a fresh follower then attaches and the gate measures
  replay throughput (commits applied per second) until it reaches the
  leader's version.  Fails below a minimum throughput.
* **steady-state**: with the follower attached, the leader runs a
  paced write storm; the gate samples the follower's frame lag and
  fails when the p95 lag exceeds a bound — i.e. the follower keeps up
  instead of drifting.

Usage::

    python benchmarks/bench_replication.py

Exits non-zero when a gate fails.  Results are merged into
``BENCH_results.json`` at the repo root (override the path with
``REPRO_BENCH_RESULTS``; set it empty to skip writing).

Knobs: ``REPRO_REPL_COMMITS`` (backlog commits for catch-up, default
300), ``REPRO_REPL_MIN_CATCHUP`` (min commits/s replayed, default 50),
``REPRO_REPL_STORM_SECONDS`` (steady-state window, default 3),
``REPRO_REPL_MAX_LAG_P95`` (max p95 frame lag, default 200),
``REPRO_REPL_THINK_MS`` (leader think time in the storm, default 1 ms).
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from typing import Dict, List

from repro.rdf import IRI, Quad
from repro.store.durable import open_durable
from repro.store.replication import (
    ReplicationFollower,
    ReplicationLeader,
    state_digest,
)

EX = "http://ex/"


def _env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, str(default)))


def _quad(n: int) -> Quad:
    return Quad(IRI(f"{EX}s{n}"), IRI(f"{EX}p{n % 7}"), IRI(f"{EX}o{n}"))


def _wait_converged(leader_net, follower_net, timeout: float) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if follower_net.data_version >= leader_net.data_version:
            return True
        time.sleep(0.002)
    return False


def _p95(samples: List[float]) -> float:
    if not samples:
        return float("inf")
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


def measure() -> Dict:
    commits = int(_env_float("REPRO_REPL_COMMITS", 300))
    storm_seconds = _env_float("REPRO_REPL_STORM_SECONDS", 3.0)
    think = _env_float("REPRO_REPL_THINK_MS", 1.0) / 1000.0

    with tempfile.TemporaryDirectory(prefix="bench-repl-") as root:
        leader_net = open_durable(os.path.join(root, "leader"))
        leader_net.create_model("m")
        leader = ReplicationLeader(
            leader_net, heartbeat_interval=0.05
        ).start()

        # Phase 1 — build a backlog with no follower attached, then
        # time a cold follower replaying it.
        for n in range(commits):
            leader_net.insert("m", _quad(n))
        backlog_version = leader_net.data_version

        follower_net = open_durable(os.path.join(root, "follower"))
        follower = ReplicationFollower(
            follower_net, *leader.address
        ).start()
        start = time.monotonic()
        converged = _wait_converged(leader_net, follower_net, timeout=120.0)
        catchup_seconds = time.monotonic() - start
        if not converged:
            raise RuntimeError("follower never caught up with the backlog")
        catchup_rate = commits / catchup_seconds if catchup_seconds else 0.0

        # Phase 2 — paced storm; sample follower frame lag.
        lags: List[float] = []
        storm_writes = 0
        stop_at = time.monotonic() + storm_seconds
        n = commits
        while time.monotonic() < stop_at:
            leader_net.insert("m", _quad(n))
            n += 1
            storm_writes += 1
            lags.append(float(follower.lag_frames()))
            time.sleep(think)
        converged = _wait_converged(leader_net, follower_net, timeout=30.0)
        digests_equal = converged and state_digest(
            follower_net.snapshot()
        ) == state_digest(leader_net.snapshot())

        follower.stop()
        follower_net.close()
        leader.stop()
        leader_net.close()

    return {
        "backlog_commits": commits,
        "backlog_version": backlog_version,
        "catchup_seconds": catchup_seconds,
        "catchup_commits_per_second": catchup_rate,
        "storm_writes": storm_writes,
        "storm_window_seconds": storm_seconds,
        "lag_frames_p95": _p95(lags),
        "lag_frames_max": max(lags) if lags else 0.0,
        "final_converged": converged,
        "final_digests_equal": digests_equal,
        "think_ms": think * 1000.0,
    }


def _merge_results(entry: Dict) -> None:
    """Record the measurement in BENCH_results.json (merge, not clobber)."""
    target = os.environ.get("REPRO_BENCH_RESULTS")
    if target == "":
        return
    if target is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        target = os.path.join(root, "BENCH_results.json")
    document: Dict = {}
    if os.path.exists(target):
        try:
            with open(target, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            document = {}
    document["replication"] = entry
    document.setdefault(
        "generated_at",
        time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    )
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"replication results merged into {target}")


def main() -> int:
    min_catchup = _env_float("REPRO_REPL_MIN_CATCHUP", 50.0)
    max_lag_p95 = _env_float("REPRO_REPL_MAX_LAG_P95", 200.0)
    entry = measure()
    entry["min_catchup_commits_per_second"] = min_catchup
    entry["max_lag_frames_p95"] = max_lag_p95
    print(
        f"catch-up: {entry['backlog_commits']} commits in "
        f"{entry['catchup_seconds']:.2f}s "
        f"({entry['catchup_commits_per_second']:.1f} commits/s)"
    )
    print(
        f"steady state: {entry['storm_writes']} writes, lag p95 "
        f"{entry['lag_frames_p95']:.0f} frames "
        f"(max {entry['lag_frames_max']:.0f})"
    )
    print(
        f"final: converged={entry['final_converged']} "
        f"digests_equal={entry['final_digests_equal']}"
    )
    _merge_results(entry)
    failed = False
    if entry["catchup_commits_per_second"] < min_catchup:
        print(
            "replication guard FAILED: catch-up throughput below "
            f"{min_catchup:.0f} commits/s",
            file=sys.stderr,
        )
        failed = True
    if entry["lag_frames_p95"] > max_lag_p95:
        print(
            "replication guard FAILED: steady-state lag p95 above "
            f"{max_lag_p95:.0f} frames",
            file=sys.stderr,
        )
        failed = True
    if not entry["final_digests_equal"]:
        print(
            "replication guard FAILED: follower state digest does not "
            "match the leader after the storm",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print("replication guard passed: follower catches up and keeps up")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
