"""Ablations for the optimizer design choices DESIGN.md calls out.

Not part of the paper's evaluation, but they quantify why the engine
reproduces its shapes:

* the graph-keyed index (GSPCM) is what makes NG's GRAPH-probe idiom
  fast (the paper's Table 5 plans use GPCSM/GSPCM for NG);
* filter push-down (and sargable constant rewriting) keeps EQ3 from
  materializing the full 3-hop join before filtering — the analogue of
  the paper raising optimizer_dynamic_sampling for the path queries;
* the NLJ-to-hash-join switch matters once intermediates grow (the
  paper: "the query optimizer chooses a hash join with a full table
  scan" for the 3/4/5-hop and triangle queries).
"""

import time

from repro.sparql import SparqlEngine
from repro.sparql import plan as plan_module


def _timed(callable_):
    callable_()  # warm-up
    start = time.perf_counter()
    callable_()
    return time.perf_counter() - start


def bench_ablation_graph_index(benchmark, ctx):
    """EQ8 (edge-KV heavy) with and without the graph-keyed index."""
    store = ctx.ng
    query = store.queries.eq8(ctx.tag)
    model = store.network.model("pg")

    def with_index():
        return store.select(query)

    baseline = _timed(with_index)
    result_with = benchmark.pedantic(with_index, rounds=3, warmup_rounds=1)
    model.drop_index("GSPC")
    try:
        ablated_time = _timed(with_index)
        result_without = store.select(query)
    finally:
        model.create_index("GSPCM")
    assert len(result_with) == len(result_without)
    print(f"\nEQ8 with GSPCM: {baseline * 1000:.2f} ms, "
          f"without: {ablated_time * 1000:.2f} ms")
    # Dropping the graph index must never make the query faster.
    assert ablated_time >= baseline * 0.5


def bench_ablation_filter_pushdown(benchmark, ctx):
    """EQ3 with and without filter push-down."""
    store = ctx.ng
    query = store.queries.eq3(ctx.tag)
    pushdown_engine = store.engine
    no_pushdown_engine = SparqlEngine(
        store.network,
        prefixes=store.vocabulary.prefixes(),
        default_model="pg",
        filter_pushdown=False,
    )

    def with_pushdown():
        return pushdown_engine.select(query)

    result_with = benchmark.pedantic(with_pushdown, rounds=3, warmup_rounds=1)
    pushed_time = _timed(with_pushdown)
    unpushed_time = _timed(lambda: no_pushdown_engine.select(query))
    result_without = no_pushdown_engine.select(query)
    assert len(result_with) == len(result_without)
    speedup = unpushed_time / max(pushed_time, 1e-9)
    print(f"\nEQ3 pushdown: {pushed_time * 1000:.2f} ms, "
          f"no pushdown: {unpushed_time * 1000:.2f} ms ({speedup:.0f}x)")
    assert unpushed_time > pushed_time, "push-down must win on EQ3"


def bench_ablation_hash_join_switch(benchmark, ctx):
    """EQ12 (triangles) with hash joins enabled vs forced NLJ."""
    store = ctx.ng
    query = store.queries.eq12()

    def run():
        return store.select(query)

    benchmark.pedantic(run, rounds=3, warmup_rounds=1)
    hash_time = _timed(run)
    original = plan_module.HASH_JOIN_MIN_ROWS
    plan_module.HASH_JOIN_MIN_ROWS = 10**12  # never hash join
    try:
        nlj_time = _timed(run)
        nlj_count = store.select(query).scalar().to_python()
    finally:
        plan_module.HASH_JOIN_MIN_ROWS = original
    hash_count = store.select(query).scalar().to_python()
    assert hash_count == nlj_count
    print(f"\nEQ12 hash join: {hash_time * 1000:.2f} ms, "
          f"forced NLJ: {nlj_time * 1000:.2f} ms")


def bench_ablation_partitioned_storage(benchmark, ctx):
    """Table 4: edge traversal against the topology partition alone vs
    the whole dataset."""
    from repro.core import PropertyGraphRdfStore

    partitioned = PropertyGraphRdfStore(model="NG", partitioned=True)
    partitioned.load(ctx.graph)
    query = "SELECT (COUNT(*) AS ?cnt) WHERE { ?x r:follows ?y }"

    def on_topology():
        return partitioned.select(
            query, model=partitioned.model_for_query_type("edge_traversal")
        )

    result = benchmark.pedantic(on_topology, rounds=3, warmup_rounds=1)
    all_result = partitioned.select(query, model="all")
    flat_result = ctx.ng.select(query)
    assert (
        result.scalar().to_python()
        == all_result.scalar().to_python()
        == flat_result.scalar().to_python()
    )
