"""Table 9 — physical storage characteristics.

Paper (MB): NG triples table 248, values 56, PCSGM 259, PSCGM 338,
GPSCM 366, SPCGM 358, total 1,625; SP 329/57/398/504/-/506, total
1,794.  Shapes to reproduce: every SP segment is larger than its NG
counterpart (more rows), but NG needs the extra graph-keyed index, so
the totals end up close.
"""

from repro.bench.report import render_table


def bench_table9_storage_report(benchmark, ctx):
    reports = {}

    def compute():
        for model in ("NG", "SP"):
            reports[model] = ctx.stores[model].storage_report()
        return reports

    benchmark.pedantic(compute, rounds=3, warmup_rounds=1)
    ng, sp = reports["NG"], reports["SP"]
    print()
    segments = ["Triples Table", "Values Table"] + sorted(
        set(ng.indexes) | set(sp.indexes)
    ) + ["Total"]

    def row(model, report):
        values = {
            "Triples Table": report.triples_table,
            "Values Table": report.values_table,
            **report.indexes,
            "Total": report.total,
        }
        return [model] + [
            round(values.get(seg, 0) / 2**20, 3) for seg in segments
        ]

    print(render_table(
        "Table 9: physical storage characteristics (MB, estimated)",
        ["Model"] + segments,
        [row("NG", ng), row("SP", sp)],
    ))
    # Page-level memory: the *measured* packed bytes of the columnar
    # index pages (delta/dictionary-encoded), vs 32 raw bytes per key.
    page_specs = sorted(set(ng.page_bytes) | set(sp.page_bytes))
    print(render_table(
        "Table 9b: packed columnar page memory (MB, measured)",
        ["Model"] + page_specs + ["Total", "B/quad/index"],
        [
            [model]
            + [round(rep.page_bytes.get(s, 0) / 2**20, 3) for s in page_specs]
            + [round(rep.page_total / 2**20, 3),
               round(rep.page_bytes_per_quad, 2)]
            for model, rep in (("NG", ng), ("SP", sp))
        ],
    ))
    # The packed pages must beat raw 4-column/8-byte keys per entry.
    for rep in (ng, sp):
        assert 0 < rep.page_bytes_per_quad < 32
    # SP's per-segment sizes exceed NG's (more triples, more values).
    assert sp.triples_table > ng.triples_table
    for spec in ("PCSG", "PSCG", "SPCG"):
        assert sp.indexes[spec] > ng.indexes[spec], spec
    # NG carries the graph-keyed index SP doesn't need.
    assert "GSPC" in ng.indexes and "GSPC" not in sp.indexes
    # Totals stay comparable (within 2x; the paper's differ by ~10%).
    assert sp.total < 2 * ng.total
    assert ng.total < 2 * sp.total
