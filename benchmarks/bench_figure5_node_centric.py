"""Figure 5 / Experiment 1 — node-centric queries EQ1-EQ4.

Paper: all queries finish within 300 ms and there is "no significant
difference between the NG and SP approaches" (node KVs are stored
identically, index NLJ scales with result size).  Shape check: the
NG/SP times stay within a small factor of each other, and the two
models return identical results.
"""

import pytest

from conftest import run_eq

QUERIES = ["EQ1", "EQ2", "EQ3", "EQ4"]
_RESULTS = {}


@pytest.mark.parametrize("model", ["NG", "SP"])
@pytest.mark.parametrize("name", QUERIES)
def bench_figure5(benchmark, ctx, model, name):
    store = ctx.stores[model]
    query = store.queries.experiment_queries(ctx.tag, ctx.hub_iri)[name]
    result = run_eq(benchmark, store, query)
    _RESULTS[(name, model)] = len(result)
    benchmark.extra_info["results"] = len(result)
    assert len(result) > 0, f"{name} must return results (tag {ctx.tag})"


def bench_figure5_equivalence(benchmark, ctx):
    """NG and SP answer every node-centric query identically."""

    def check():
        for name in QUERIES:
            counts = set()
            for model in ("NG", "SP"):
                store = ctx.stores[model]
                query = store.queries.experiment_queries(
                    ctx.tag, ctx.hub_iri
                )[name]
                counts.add(len(store.select(query)))
            assert len(counts) == 1, (name, counts)
        return True

    assert benchmark.pedantic(check, rounds=1, warmup_rounds=0)
