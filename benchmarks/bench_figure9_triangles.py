"""Figure 9 / Experiment 5 — triangle counting (EQ12).

Paper: 20,211,887 follows triangles found in 61 s (NG) / 65 s (SP);
"the NG approach performs slightly better because of its smaller table
size" under hash joins with full scans.  Shape checks: identical counts
across models and agreement with the native triangle counter.
"""

import pytest

from conftest import run_eq
from repro.propertygraph.traversal import count_triangles


@pytest.mark.parametrize("model", ["NG", "SP"])
def bench_figure9(benchmark, ctx, model):
    store = ctx.stores[model]
    query = store.queries.eq12()
    result = run_eq(benchmark, store, query)
    count = result.scalar().to_python()
    benchmark.extra_info["triangles"] = count
    assert count > 0


def bench_figure9_counts_agree(benchmark, ctx):
    def check():
        native = count_triangles(ctx.graph, "follows")
        for model in ("NG", "SP"):
            store = ctx.stores[model]
            sparql = store.select(store.queries.eq12()).scalar().to_python()
            assert sparql == native, model
        return native

    count = benchmark.pedantic(check, rounds=1, warmup_rounds=0)
    print(f"\nfollows triangles: {count:,}")
