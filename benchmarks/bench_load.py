"""Bulk load timing (Section 4.4's text, alongside Table 9).

Paper: "Loading the quads and triples for the NG and SP models took
5 min 16 sec and 6 min 01 sec respectively" — SP takes longer because
it has 2*E more triples to encode and index.  Shape check: SP's load
time is at least as large as NG's, and the loaded quad counts obey the
Table 7 delta.
"""

import time

from repro.core import MODEL_NG, MODEL_SP, PropertyGraphRdfStore


def _load_time(model, graph):
    store = PropertyGraphRdfStore(model=model)
    start = time.perf_counter()
    counts = store.load(graph)
    return time.perf_counter() - start, sum(counts.values()), store


def bench_load_ng(benchmark, ctx):
    store_holder = {}

    def load():
        store = PropertyGraphRdfStore(model=MODEL_NG)
        store.load(ctx.graph)
        store_holder["store"] = store
        return store

    benchmark.pedantic(load, rounds=3, warmup_rounds=1)
    assert len(store_holder["store"].quads()) > 0


def bench_load_sp(benchmark, ctx):
    def load():
        store = PropertyGraphRdfStore(model=MODEL_SP)
        store.load(ctx.graph)
        return store

    benchmark.pedantic(load, rounds=3, warmup_rounds=1)


def bench_load_shape(benchmark, ctx):
    """SP loads more quads and takes at least as long as NG."""

    def check():
        ng_time, ng_quads, _ = _load_time(MODEL_NG, ctx.graph)
        sp_time, sp_quads, _ = _load_time(MODEL_SP, ctx.graph)
        assert sp_quads - ng_quads == 2 * ctx.graph.edge_count
        print(f"\nload: NG {ng_time * 1000:.0f} ms ({ng_quads:,} quads), "
              f"SP {sp_time * 1000:.0f} ms ({sp_quads:,} quads)")
        return ng_time, sp_time

    ng_time, sp_time = benchmark.pedantic(check, rounds=1, warmup_rounds=0)
    # Generous bound: SP must not be dramatically faster than NG.
    assert sp_time > ng_time * 0.7
