"""Shared fixtures for the benchmark suite.

Each ``bench_*`` file regenerates one of the paper's tables or figures.
The dataset scale is set with ``REPRO_SCALE`` (ego-network count,
default 24; the paper used 973).  Results print paper-style tables so
the run's output can be compared side by side with the paper — see
EXPERIMENTS.md for the expected shapes.

Every query benchmarked through :func:`run_eq` is also appended to a
machine-readable ``BENCH_results.json`` at the repo root when the
session finishes (format documented in EXPERIMENTS.md).  Override the
path with ``REPRO_BENCH_RESULTS=/some/path.json``; set it to the empty
string to skip writing entirely.  CI's overhead-guard job consumes
this file to compare runs across commits.
"""

import json
import os
import subprocess
import time
from typing import Dict, List, Optional

import pytest

from repro.bench.harness import BenchContext, build_stores
from repro.obs import QueryCollector
from repro.obs import metrics as _obs

#: One entry per run_eq call, flushed by pytest_sessionfinish.
_RESULTS: List[Dict] = []


@pytest.fixture(scope="session")
def ctx() -> BenchContext:
    """The Twitter graph and its NG/SP stores, built once per session."""
    return build_stores()


def run_eq(benchmark, store, query: str):
    """Benchmark one SPARQL query with the paper's warm-up methodology.

    The timed rounds run uninstrumented; one extra warm run captures
    the operator counters (index scans, join strategies, push-down
    hits) into ``benchmark.extra_info["counters"]`` so saved runs
    record *why* a query costs what it does, not just the time.
    """
    store.select(query)  # warm the store (buffer-cache analogue)
    result_holder = {}

    def run():
        result_holder["result"] = store.select(query)

    benchmark.pedantic(run, rounds=3, warmup_rounds=1, iterations=1)
    collector = QueryCollector()
    with _obs.collect(collector):
        store.select(query)
    counters = dict(collector.counters)
    benchmark.extra_info["counters"] = counters
    _RESULTS.append(_result_entry(benchmark, store, counters))
    return result_holder["result"]


def _result_entry(benchmark, store, counters: Dict) -> Dict:
    """One BENCH_results.json entry (see EXPERIMENTS.md for the schema)."""
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    return {
        "name": getattr(benchmark, "name", None),
        "model": getattr(store, "model", None),
        "median_seconds": getattr(stats, "median", None),
        "min_seconds": getattr(stats, "min", None),
        "rounds": getattr(stats, "rounds", None),
        "counters": counters,
    }


def _git_sha() -> str:
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else "unknown"


def pytest_sessionfinish(session, exitstatus):
    """Write BENCH_results.json when any run_eq results were collected."""
    if not _RESULTS:
        return
    target: Optional[str] = os.environ.get("REPRO_BENCH_RESULTS")
    if target == "":
        return  # explicitly disabled
    if target is None:
        target = os.path.join(str(session.config.rootpath),
                              "BENCH_results.json")
    document = {
        "generated_at": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "git_sha": _git_sha(),
        "scale": int(os.environ.get("REPRO_SCALE", "24")),
        "results": list(_RESULTS),
    }
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
