"""Shared fixtures for the benchmark suite.

Each ``bench_*`` file regenerates one of the paper's tables or figures.
The dataset scale is set with ``REPRO_SCALE`` (ego-network count,
default 24; the paper used 973).  Results print paper-style tables so
the run's output can be compared side by side with the paper — see
EXPERIMENTS.md for the expected shapes.
"""

import pytest

from repro.bench.harness import BenchContext, build_stores


@pytest.fixture(scope="session")
def ctx() -> BenchContext:
    """The Twitter graph and its NG/SP stores, built once per session."""
    return build_stores()


def run_eq(benchmark, store, query: str):
    """Benchmark one SPARQL query with the paper's warm-up methodology."""
    store.select(query)  # warm the store (buffer-cache analogue)
    result_holder = {}

    def run():
        result_holder["result"] = store.select(query)

    benchmark.pedantic(run, rounds=3, warmup_rounds=1, iterations=1)
    return result_holder["result"]
