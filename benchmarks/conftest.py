"""Shared fixtures for the benchmark suite.

Each ``bench_*`` file regenerates one of the paper's tables or figures.
The dataset scale is set with ``REPRO_SCALE`` (ego-network count,
default 24; the paper used 973).  Results print paper-style tables so
the run's output can be compared side by side with the paper — see
EXPERIMENTS.md for the expected shapes.
"""

import pytest

from repro.bench.harness import BenchContext, build_stores
from repro.obs import QueryCollector
from repro.obs import metrics as _obs


@pytest.fixture(scope="session")
def ctx() -> BenchContext:
    """The Twitter graph and its NG/SP stores, built once per session."""
    return build_stores()


def run_eq(benchmark, store, query: str):
    """Benchmark one SPARQL query with the paper's warm-up methodology.

    The timed rounds run uninstrumented; one extra warm run captures
    the operator counters (index scans, join strategies, push-down
    hits) into ``benchmark.extra_info["counters"]`` so saved runs
    record *why* a query costs what it does, not just the time.
    """
    store.select(query)  # warm the store (buffer-cache analogue)
    result_holder = {}

    def run():
        result_holder["result"] = store.select(query)

    benchmark.pedantic(run, rounds=3, warmup_rounds=1, iterations=1)
    collector = QueryCollector()
    with _obs.collect(collector):
        store.select(query)
    benchmark.extra_info["counters"] = dict(collector.counters)
    return result_holder["result"]
