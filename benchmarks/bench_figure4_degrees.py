"""Figure 4 — out-degree and in-degree distribution by count.

Paper: log-log scatter of degree vs. vertex count, with in-degrees
generally higher than out-degrees.  We print the head of both
histograms and assert the heavy-tail shape.
"""

from repro.bench.report import render_series


def bench_figure4_degree_distribution(benchmark, ctx):
    out_hist, in_hist = benchmark.pedantic(
        ctx.graph.degree_distribution, rounds=3, warmup_rounds=1
    )
    print()
    head = sorted(set(list(out_hist)[:0] + [0, 1, 2, 3, 4, 5]))
    print(render_series(
        "Figure 4: degree distribution (head)",
        "degree",
        {
            "out-degree count": {d: out_hist.get(d, 0) for d in head},
            "in-degree count": {d: in_hist.get(d, 0) for d in head},
        },
    ))
    max_out = max(out_hist)
    max_in = max(in_hist)
    print(f"max out-degree: {max_out}, max in-degree: {max_in}")
    # Heavy tail: few vertices carry degrees far above the mean.
    mean_degree = ctx.graph.edge_count / ctx.graph.vertex_count
    assert max_out > 2 * mean_degree
    assert max_in > 2 * mean_degree


def bench_figure4_via_sparql(benchmark, ctx):
    """The same distributions through SPARQL (EQ9/EQ10) must agree with
    the native computation."""
    from repro.propertygraph.traversal import degree_histogram

    store = ctx.ng
    query = store.queries.eq10()
    store.select(query)
    result = benchmark.pedantic(
        lambda: store.select(query), rounds=3, warmup_rounds=1
    )
    sparql_out = {
        row["outDeg"].to_python(): row["cnt"].to_python() for row in result
    }
    _, native_out = degree_histogram(ctx.graph, ["knows", "follows"])
    assert sparql_out == native_out
