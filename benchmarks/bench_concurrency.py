#!/usr/bin/env python
"""Concurrency guard: reader latency must not collapse under writes.

The MVCC snapshot design promises that queries never wait behind
writers — a query pins an immutable snapshot and runs lock-free.  This
script makes that promise enforceable as a latency gate: it measures
the p95 latency of a reader running alone (*idle*), then the same
reader's p95 while writer threads apply a sustained update storm, and
fails when the storm p95 exceeds the idle p95 by more than the
tolerance.

CPython caveat: reads and writes still contend for the GIL, so "no
lock waits" cannot mean "zero slowdown" — the writers pace themselves
with a short think time between updates (as a real ingest workload
would) and the gate bounds the *remaining* interference.  Before MVCC,
this workload made readers queue behind every write-lock hold and the
ratio blew far past any reasonable bound.

Usage::

    python benchmarks/bench_concurrency.py

Exits non-zero when the gate fails.  Results are merged into
``BENCH_results.json`` at the repo root (override the path with
``REPRO_BENCH_RESULTS``; set it empty to skip writing).

Knobs: ``REPRO_CONCURRENCY_TOLERANCE`` (max storm/idle p95 ratio,
default 1.25), ``REPRO_CONCURRENCY_SECONDS`` (measure window per
phase, default 3), ``REPRO_CONCURRENCY_WRITERS`` (storm writer
threads, default 2), ``REPRO_CONCURRENCY_THINK_MS`` (writer think time
between updates, default 2 ms).
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import threading
import time
from typing import Dict, List

from repro.rdf import IRI, Quad
from repro.sparql import SparqlEngine
from repro.store import SemanticNetwork

EX = "http://ex/"

READER_QUERY = (
    "SELECT ?s ?o WHERE { ?s <http://ex/knows> ?o . "
    "?o <http://ex/knows> ?s }"
)


def _env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, str(default)))


def _build_engine(people: int = 400) -> SparqlEngine:
    """A social graph big enough that one query does real index work."""
    network = SemanticNetwork()
    network.create_model("m")
    quads = []
    for i in range(people):
        s = IRI(f"{EX}v{i}")
        quads.append(Quad(s, IRI(f"{EX}knows"), IRI(f"{EX}v{(i + 1) % people}")))
        quads.append(Quad(s, IRI(f"{EX}knows"), IRI(f"{EX}v{(i + 7) % people}")))
        quads.append(Quad(IRI(f"{EX}v{(i + 1) % people}"), IRI(f"{EX}knows"), s))
    network.bulk_load("m", quads)
    return SparqlEngine(network, default_model="m")


def _p95(samples: List[float]) -> float:
    if not samples:
        return float("inf")
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


def _read_loop(engine: SparqlEngine, seconds: float) -> List[float]:
    samples: List[float] = []
    stop_at = time.monotonic() + seconds
    while time.monotonic() < stop_at:
        start = time.perf_counter()
        engine.select(READER_QUERY)
        samples.append(time.perf_counter() - start)
    return samples


def measure() -> Dict:
    seconds = _env_float("REPRO_CONCURRENCY_SECONDS", 3.0)
    writers = int(_env_float("REPRO_CONCURRENCY_WRITERS", 2))
    think = _env_float("REPRO_CONCURRENCY_THINK_MS", 2.0) / 1000.0
    engine = _build_engine()

    engine.select(READER_QUERY)  # warm plan cache and indexes
    idle = _read_loop(engine, seconds)

    stop = threading.Event()
    write_counts = [0] * writers
    network = engine.network

    def writer(index: int) -> None:
        # Direct store DML: each batch is one MVCC commit (COW copy +
        # snapshot publication), which is exactly the machinery the
        # gate must prove readers don't wait behind.  SPARQL-text
        # updates would mostly measure parser CPU stealing the GIL.
        # The written predicate deliberately does NOT match the reader
        # query — otherwise the storm phase measures a growing result
        # set, not interference.
        n = 0
        while not stop.is_set():
            a = IRI(f"{EX}w{index}-{n}")
            b = IRI(f"{EX}w{index}-{n + 1}")
            with network.write_batch():
                network.insert("m", Quad(a, IRI(f"{EX}follows"), b))
                network.insert("m", Quad(b, IRI(f"{EX}follows"), a))
            n += 1
            # Ingest-style pacing: without it the GIL (not locks) is
            # what the gate would measure.
            time.sleep(think)
        write_counts[index] = n

    threads = [
        threading.Thread(target=writer, args=(i,)) for i in range(writers)
    ]
    for t in threads:
        t.start()
    time.sleep(0.2)  # let the storm reach steady state
    try:
        storm = _read_loop(engine, seconds)
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=30)

    return {
        "idle_p95_seconds": _p95(idle),
        "storm_p95_seconds": _p95(storm),
        "idle_median_seconds": statistics.median(idle),
        "storm_median_seconds": statistics.median(storm),
        "idle_reads": len(idle),
        "storm_reads": len(storm),
        "writes_applied": sum(write_counts),
        "writers": writers,
        "think_ms": think * 1000.0,
        "window_seconds": seconds,
    }


def _merge_results(entry: Dict) -> None:
    """Record the measurement in BENCH_results.json (merge, not clobber)."""
    target = os.environ.get("REPRO_BENCH_RESULTS")
    if target == "":
        return
    if target is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        target = os.path.join(root, "BENCH_results.json")
    document: Dict = {}
    if os.path.exists(target):
        try:
            with open(target, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            document = {}
    document["concurrency"] = entry
    document.setdefault(
        "generated_at",
        time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    )
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"concurrency results merged into {target}")


def main() -> int:
    tolerance = _env_float("REPRO_CONCURRENCY_TOLERANCE", 1.25)
    entry = measure()
    ratio = (
        entry["storm_p95_seconds"] / entry["idle_p95_seconds"]
        if entry["idle_p95_seconds"] > 0
        else float("inf")
    )
    entry["p95_ratio"] = ratio
    entry["tolerance"] = tolerance
    print(
        f"idle:  p95 {entry['idle_p95_seconds'] * 1e3:.3f} ms  "
        f"median {entry['idle_median_seconds'] * 1e3:.3f} ms  "
        f"({entry['idle_reads']} reads)"
    )
    print(
        f"storm: p95 {entry['storm_p95_seconds'] * 1e3:.3f} ms  "
        f"median {entry['storm_median_seconds'] * 1e3:.3f} ms  "
        f"({entry['storm_reads']} reads, {entry['writes_applied']} writes "
        f"by {entry['writers']} writers)"
    )
    print(f"p95 ratio storm/idle: {ratio:.3f} (tolerance {tolerance:.2f})")
    _merge_results(entry)
    if ratio > tolerance:
        print(
            "concurrency guard FAILED: reader p95 degraded beyond "
            "tolerance under the write storm",
            file=sys.stderr,
        )
        return 1
    print("concurrency guard passed: reader latency held under writes")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
